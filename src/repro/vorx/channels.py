"""VORX channels: named, dynamically created message-passing connections.

Paper Sections 3.2 and 4: a channel has an arbitrary name; two processes
rendezvous by opening the same name (the open is handled by the object
manager responsible for that name).  Data moves with read/write calls
under a **stop-and-wait** protocol: the writer's kernel sends the data and
blocks the writer until the receiving kernel acknowledges.  If the
receiver has no side-buffer space (rare -- "the kernel has many side
buffers"), it requests retransmission once space frees.

There are also the specialised calls the paper describes: *multiplexed
read* (block until data arrives on any of several channels) and server
name reuse (FIFO pairing at the object manager lets a server re-open the
same name repeatedly).

Latency anchor: a 1000-message stream of 4-byte writes measures ~303
us/message (Table 2); the per-byte slope is two CPU copies plus two wire
hops (~0.68 us/byte).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.hpc.message import MessageKind, Packet
from repro.vorx.errors import (
    ChannelBusyError,
    ChannelClosedError,
    ChannelStateError,
)
from repro.vorx.subprocesses import BlockReason, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.vorx.kernel import NodeKernel


class ChannelEndpoint:
    """One side of a channel, owned by a kernel."""

    def __init__(self, eid: int, name: str, sp: Subprocess) -> None:
        self.eid = eid
        self.name = name
        self.sp = sp
        self.peer_addr: Optional[int] = None
        self.peer_eid: Optional[int] = None
        self.open = False
        self.closed = False
        #: Buffered arrivals: ``(size, payload, owed_ack)`` tuples.
        #: ``owed_ack`` is ``None`` when the fragment was acknowledged at
        #: the ISR (stop-and-wait), or the ``(xfer, src, src_channel)``
        #: address of the deferred acknowledgement a *batched* fragment
        #: earns only when a reader consumes the buffer.
        self.side_buffers: deque[tuple[int, Any, Any]] = deque()
        #: Event a blocked reader waits on (shared for multiplexed reads).
        self.reader_event: Optional["Event"] = None
        #: Endpoints sharing the reader event (multiplexed read group).
        self.read_group: Optional[list["ChannelEndpoint"]] = None
        #: Event the blocked writer waits on (stop-and-wait ack).
        self.writer_event: Optional["Event"] = None
        #: Unacknowledged in-flight fragment kept for retransmission:
        #: ``(size, payload, xfer)``.
        self.unacked: Optional[tuple[int, Any, int]] = None
        #: Next outgoing transfer id (stamps each fragment so the peer
        #: can discard duplicates created by faults or retransmission).
        self.next_xfer = 0
        #: Highest transfer id delivered from the peer (duplicate filter).
        self.last_xfer = -1
        #: True if we dropped a data message and owe the peer a RETRY.
        self.starved_peer = False
        #: In-flight unacknowledged fragments of a *batched* write, keyed
        #: by transfer id (insertion order == transfer order):
        #: ``(size, payload, sent_at)``.  ``sent_at`` feeds the adaptive
        #: window's ack-RTT estimator and the watchdog's age gate.
        self.window: dict[int, tuple[int, Any, float]] = {}
        #: Adaptive (AIMD) congestion window in fragments, persistent
        #: across writes on this endpoint.  ``None`` until the first
        #: batched write under an adaptive cost model seeds it from
        #: ``chan_batch_window``.
        self.cwnd: Optional[float] = None
        #: EWMA-smoothed ack round-trip time (0.0 = no sample yet).
        self.srtt = 0.0
        #: Transfer ids re-sent at least once: per Karn's algorithm their
        #: acks yield no RTT sample (the sample would be ambiguous).
        self.retransmitted: set[int] = set()
        #: Shrink cooldown marker: shrink triggers attributed to transfer
        #: ids below this are ignored, so one loss/pressure episode
        #: shrinks the window once, not once per fragment.
        self.recover_until = 0
        #: While a batched writer is blocked: wake it once ``len(window)``
        #: drops below this threshold (slot freed, or fully drained).
        self.wake_below = 0
        #: True for the whole duration of a batched write -- spans the
        #: transient moments when the window is empty between fragments,
        #: so the busy check and the batch watchdog see one write, not
        #: many.
        self.batch_active = False
        #: Batched fragments we dropped (buffer starvation or a sequence
        #: gap) that are owed a pull-retransmission: each consuming read
        #: pulls exactly one CTRL_RETRY, so retry traffic tracks the
        #: reader's pace instead of flooding.
        self.owed_pulls = 0
        #: Statistics reported by the communications debugger.  Both ends
        #: count *fragments* (the unit actually acknowledged on the wire),
        #: so the two sides of a fragmented write agree.
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- state summary for cdb --------------------------------------------
    @property
    def reader_blocked(self) -> bool:
        return self.reader_event is not None

    @property
    def writer_blocked(self) -> bool:
        return self.writer_event is not None

    def __repr__(self) -> str:
        return (
            f"<ChannelEndpoint {self.name!r} eid={self.eid} "
            f"peer={self.peer_addr}:{self.peer_eid} open={self.open}>"
        )


#: Control sub-kinds carried in CHANNEL_CTRL packets.
CTRL_CLOSE = "close"
CTRL_RETRY = "retry"


class ChannelService:
    """Per-kernel channel implementation."""

    #: Payload bytes of an open request/reply on the wire.
    OPEN_REQUEST_BYTES = 48

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        self.endpoints: dict[int, ChannelEndpoint] = {}
        self._next_eid = 1
        metrics = kernel.metrics
        self._m_frags_sent = metrics.counter("chan.fragments_sent")
        self._m_frags_received = metrics.counter("chan.fragments_received")
        self._m_bytes_sent = metrics.counter("chan.bytes_sent")
        self._m_bytes_received = metrics.counter("chan.bytes_received")
        self._m_writes = metrics.counter("chan.writes")
        self._m_naks = metrics.counter("chan.naks")
        self._m_retransmits = metrics.counter("chan.retransmits")
        #: Fault-recovery accounting (only move when a FaultPlan is live).
        self._m_timeout_retransmits = metrics.counter(
            "chan.timeout_retransmits"
        )
        self._m_corrupt_drops = metrics.counter("chan.corrupt_drops")
        self._m_duplicate_drops = metrics.counter("chan.duplicate_drops")
        #: Whole-write round-trip latency (syscall entry to final ack).
        self._m_write_rtt = metrics.histogram("chan.write_rtt_us")
        #: Adaptive-window observability: current effective window (the
        #: gauge's high-water mark records the largest window reached)
        #: and the number of multiplicative-decrease events.
        self._m_window_size = metrics.gauge("chan.window.size")
        self._m_window_shrinks = metrics.counter("chan.window.shrinks")

    # ------------------------------------------------------------------
    # adaptive window (AIMD) helpers
    # ------------------------------------------------------------------
    def _window_cap(self) -> int:
        """Upper clamp for the effective window."""
        costs = self.kernel.costs
        cap = costs.chan_side_buffers
        if costs.chan_window_max:
            cap = min(cap, costs.chan_window_max)
        return cap

    def _window_limit(self, endpoint: ChannelEndpoint) -> int:
        """Current effective window for ``endpoint``, in fragments.

        Fixed mode: ``min(chan_batch_window, chan_side_buffers)``.
        Adaptive mode: the integer part of the endpoint's AIMD ``cwnd``,
        clamped to ``[chan_window_min, min(chan_window_max or
        chan_side_buffers, chan_side_buffers)]``.
        """
        costs = self.kernel.costs
        if not costs.chan_window_adaptive:
            return min(costs.chan_batch_window, costs.chan_side_buffers)
        if endpoint.cwnd is None:
            endpoint.cwnd = float(
                min(costs.chan_batch_window, self._window_cap())
            )
        return max(
            costs.chan_window_min,
            min(self._window_cap(), int(endpoint.cwnd)),
        )

    def _window_grow(self, endpoint: ChannelEndpoint, n_acked: int) -> None:
        """Additive increase: ``ai`` fragments per window's-worth of acks."""
        costs = self.kernel.costs
        old = self._window_limit(endpoint)  # seeds cwnd if needed
        endpoint.cwnd = min(
            float(self._window_cap()),
            endpoint.cwnd + costs.chan_window_ai * n_acked / max(old, 1),
        )
        new = self._window_limit(endpoint)
        if new != old:
            self._m_window_size.set(float(new))
            self.kernel.emit("channel", "channel-window", data=endpoint.name,
                             eid=endpoint.eid, size=new)

    def _window_shrink(
        self, endpoint: ChannelEndpoint, trigger_xfer: Optional[int],
        reason: str,
    ) -> bool:
        """Multiplicative decrease, at most once per loss/pressure episode.

        ``trigger_xfer`` attributes the trigger to a fragment: triggers
        from fragments sent before the last shrink (below
        :attr:`ChannelEndpoint.recover_until`) are echoes of the same
        episode and are ignored.  Returns True if the window shrank.
        """
        costs = self.kernel.costs
        if trigger_xfer is not None and trigger_xfer < endpoint.recover_until:
            return False
        endpoint.recover_until = endpoint.next_xfer
        old = self._window_limit(endpoint)  # seeds cwnd if needed
        endpoint.cwnd = max(
            float(costs.chan_window_min),
            endpoint.cwnd * costs.chan_window_md,
        )
        self._m_window_shrinks.inc()
        new = self._window_limit(endpoint)
        self._m_window_size.set(float(new))
        self.kernel.emit("channel", "channel-window-shrink",
                         data=endpoint.name, eid=endpoint.eid,
                         reason=reason, size=new)
        return True

    def _ack_pressure(self, endpoint: ChannelEndpoint) -> Optional[float]:
        """Side-buffer occupancy fraction piggybacked on batched acks.

        Only attached under an adaptive cost model, so the fixed-window
        and stop-and-wait ack wire format is unchanged.
        """
        costs = self.kernel.costs
        if not costs.chan_window_adaptive:
            return None
        return len(endpoint.side_buffers) / costs.chan_side_buffers

    # ------------------------------------------------------------------
    # open / close (subprocess context)
    # ------------------------------------------------------------------
    def open(self, sp: Subprocess, name: str):
        """Generator: open ``name``; returns the endpoint when paired."""
        kernel = self.kernel
        kernel.count_syscall("chan_open")
        endpoint = ChannelEndpoint(self._next_eid, name, sp)
        self._next_eid += 1
        self.endpoints[endpoint.eid] = endpoint
        yield kernel.k_exec(kernel.costs.syscall_overhead)
        reply = yield from kernel.manager.request_open(
            sp, name, endpoint.eid, kind="channel"
        )
        peer_addr, peer_eid = reply
        endpoint.peer_addr = peer_addr
        endpoint.peer_eid = peer_eid
        endpoint.open = True
        kernel.metrics.counter("chan.opens").inc()
        kernel.emit("channel", "channel-open", data=name, eid=endpoint.eid,
                    peer=peer_addr)
        if endpoint.closed:
            # Closed while the rendezvous was still in flight: the peer
            # could not be notified then, so tell it now.
            kernel.post(
                dst=peer_addr,
                size=kernel.costs.chan_ack_bytes,
                kind=MessageKind.CHANNEL_CTRL,
                channel=peer_eid,
                payload=CTRL_CLOSE,
            )
        return endpoint

    def close(self, sp: Subprocess, endpoint: ChannelEndpoint):
        """Generator: close our side and notify the peer.

        Closing is always safe: an endpoint whose open has not completed
        yet (no peer paired, ``peer_addr`` still None) is simply marked
        closed -- there is no peer kernel to notify.
        """
        kernel = self.kernel
        kernel.count_syscall("chan_close")
        yield kernel.k_exec(kernel.costs.syscall_overhead)
        already_closed = endpoint.closed
        endpoint.closed = True
        kernel.metrics.counter("chan.closes").inc()
        kernel.emit("channel", "channel-close", data=endpoint.name,
                    eid=endpoint.eid, paired=endpoint.peer_addr is not None)
        if already_closed or endpoint.peer_addr is None:
            return
        # The close carries the highest transfer id we delivered, so a
        # writer whose final ack was lost can tell delivered-then-closed
        # from closed-with-data-lost.
        kernel.post(
            dst=endpoint.peer_addr,
            size=kernel.costs.chan_ack_bytes,
            kind=MessageKind.CHANNEL_CTRL,
            channel=endpoint.peer_eid,
            payload=CTRL_CLOSE,
            xfer=endpoint.last_xfer if endpoint.last_xfer >= 0 else None,
        )

    # ------------------------------------------------------------------
    # write (subprocess context): stop-and-wait with fragmentation
    # ------------------------------------------------------------------
    def write(self, sp: Subprocess, endpoint: ChannelEndpoint, nbytes: int,
              payload: Any = None):
        """Generator: send ``nbytes`` (fragmented at the hardware maximum).

        Stop-and-wait: each fragment blocks the writer until the receiving
        kernel acknowledges it.  The kernel never copies the data to a
        safe place -- the writer stays blocked, so its buffer is stable
        (the paper's justification for stop-and-wait error recovery).

        When :attr:`~repro.model.costs.CostModel.chan_batch_window` is
        greater than one, multi-fragment writes take the *batched* path
        instead (see :meth:`_write_batched`): one syscall charge, up to
        ``k`` fragments pipelined in flight, same per-fragment ack and
        retransmission guarantees.
        """
        kernel = self.kernel
        costs = kernel.costs
        self._require_open(endpoint)
        kernel.count_syscall("chan_write")
        if endpoint.writer_event is not None or endpoint.batch_active:
            raise ChannelBusyError(
                f"channel {endpoint.name!r} already has a write outstanding"
            )
        if nbytes < 0:
            raise ValueError(f"negative write length: {nbytes}")
        window_k = min(costs.chan_batch_window, costs.chan_side_buffers)
        if (
            window_k > 1 or costs.chan_window_adaptive
        ) and nbytes > costs.hpc_max_message:
            yield from self._write_batched(
                sp, endpoint, nbytes, payload, window_k
            )
            return
        started_at = kernel.sim.now
        yield kernel.k_exec(costs.syscall_overhead)
        remaining = nbytes
        first = True
        while first or remaining > 0:
            first = False
            fragment = min(remaining, costs.hpc_max_message)
            remaining -= fragment
            last = remaining == 0
            yield kernel.k_exec(costs.chan_send_kernel + costs.copy_time(fragment))
            if endpoint.closed or (
                endpoint.peer_addr is None
            ):  # peer closed while we were charging
                raise ChannelClosedError(f"channel {endpoint.name!r} closed")
            ack = kernel.sim.event()
            endpoint.writer_event = ack
            xfer = endpoint.next_xfer
            endpoint.next_xfer += 1
            endpoint.unacked = (fragment, payload if last else None, xfer)
            kernel.post(
                dst=endpoint.peer_addr,
                size=fragment,
                kind=MessageKind.CHANNEL_DATA,
                channel=endpoint.peer_eid,
                src_channel=endpoint.eid,
                payload=(payload if last else None),
                xfer=xfer,
            )
            injector = kernel.sim.faults
            if injector is not None and injector.plan.can_lose_messages:
                # Under fault injection a data fragment or its ack can be
                # lost outright; arm the ack watchdog so stop-and-wait
                # recovers by timeout retransmission.
                kernel.sim.process(self._ack_watchdog(endpoint, ack))
            try:
                yield from kernel.block(sp, BlockReason.OUTPUT, ack)
            finally:
                endpoint.writer_event = None
                endpoint.unacked = None
            # One acknowledged fragment == one message on the wire; both
            # ends count this same unit (the receiver counts per arriving
            # fragment), so cdb's two directions agree for fragmented
            # writes.
            endpoint.messages_sent += 1
            endpoint.bytes_sent += fragment
            self._m_frags_sent.value += 1.0
            self._m_bytes_sent.value += fragment
        self._m_writes.value += 1.0
        self._m_write_rtt.observe(kernel.sim.now - started_at)

    def _ack_watchdog(self, endpoint: ChannelEndpoint, ack: "Event"):
        """Generator (kernel context): retransmit until the ack arrives.

        Only started while a fault plan is attached.  The receiver's
        transfer-id filter makes spurious retransmissions harmless (they
        are dropped and re-acked).
        """
        kernel = self.kernel
        period = kernel.sim.faults.plan.channel_retry_timeout_us
        while True:
            yield kernel.sim.timeout(period)
            if (
                ack.triggered
                or endpoint.writer_event is not ack
                or endpoint.unacked is None
                or endpoint.closed
            ):
                return
            if self._abort_if_peer_crashed(endpoint):
                return
            size, payload, xfer = endpoint.unacked
            self._m_timeout_retransmits.inc()
            kernel.emit("channel", "channel-timeout-retransmit",
                        data=endpoint.name, eid=endpoint.eid, size=size,
                        xfer=xfer)
            yield kernel.k_exec(
                kernel.costs.chan_send_kernel + kernel.costs.copy_time(size)
            )
            # The ack may have raced in while we were charging the copy.
            if ack.triggered or endpoint.writer_event is not ack:
                return
            kernel.post(
                dst=endpoint.peer_addr,
                size=size,
                kind=MessageKind.CHANNEL_DATA,
                channel=endpoint.peer_eid,
                src_channel=endpoint.eid,
                payload=payload,
                xfer=xfer,
            )

    # ------------------------------------------------------------------
    # batched write (subprocess context): windowed fragmentation
    # ------------------------------------------------------------------
    def _write_batched(self, sp: Subprocess, endpoint: ChannelEndpoint,
                       nbytes: int, payload: Any, window_k: int):
        """Generator: windowed large write -- one syscall, ``k`` in flight.

        This is the paper's "one system call, many wire events" large
        write.  It keeps every stop-and-wait *guarantee* -- each fragment
        individually acknowledged, retransmitted on loss, counted
        identically by cdb on both ends -- while amortizing the software
        cost: one ``syscall_overhead + chan_batch_setup`` charge covers
        the whole call, each fragment then costs only
        ``chan_batch_frag_kernel`` plus its copy, and up to ``window_k``
        fragments may be unacknowledged at once.

        Flow control comes from the acknowledgement discipline rather
        than a separate credit scheme: the receiving kernel acknowledges
        a batched fragment it *side-buffers* only when a reader consumes
        it (see :meth:`on_data` / :meth:`read`), so the window advances
        at the reader's pace and the sender can never run more than
        ``window_k <= chan_side_buffers`` fragments ahead.  A
        consequence worth knowing: the write returns only once the
        receiver has drained every fragment, which is the strict reading
        of the paper's "the writer stays blocked, so its buffer is
        stable".

        Loss recovery is go-back-N: the receiver accepts batched
        fragments only in transfer-id order (a gap is dropped
        unacknowledged), acknowledgements are cumulative at this end,
        and retransmission of the *oldest* window entry is pulled by the
        receiver (one CTRL_RETRY per consuming read) or pushed by the
        timeout watchdog when a fault plan can lose messages outright.
        """
        kernel = self.kernel
        costs = kernel.costs
        adaptive = costs.chan_window_adaptive
        started_at = kernel.sim.now
        # One kernel entry covers the whole call: the per-write syscall
        # plus the batch descriptor setup.
        yield kernel.k_exec(costs.syscall_overhead + costs.chan_batch_setup)
        endpoint.batch_active = True
        injector = kernel.sim.faults
        watchdog_armed = False
        window = endpoint.window
        self._m_window_size.set(float(self._window_limit(endpoint)))
        try:
            remaining = nbytes
            first = True
            while first or remaining > 0:
                first = False
                fragment = min(remaining, costs.hpc_max_message)
                remaining -= fragment
                last = remaining == 0
                yield kernel.k_exec(
                    costs.chan_batch_frag_kernel + costs.copy_time(fragment)
                )
                if endpoint.closed or endpoint.peer_addr is None:
                    raise ChannelClosedError(
                        f"channel {endpoint.name!r} closed"
                    )
                xfer = endpoint.next_xfer
                endpoint.next_xfer += 1
                window[xfer] = (
                    fragment, payload if last else None, kernel.sim.now
                )
                kernel.post(
                    dst=endpoint.peer_addr,
                    size=fragment,
                    kind=MessageKind.CHANNEL_DATA,
                    channel=endpoint.peer_eid,
                    src_channel=endpoint.eid,
                    payload=(payload if last else None),
                    xfer=xfer,
                    batched=True,
                )
                if (
                    not watchdog_armed
                    and injector is not None
                    and injector.plan.can_lose_messages
                ):
                    # One watchdog guards the whole write (stop-and-wait
                    # arms one per fragment): on timeout it re-sends the
                    # oldest unacknowledged window entry, and it fails
                    # the write outright if the peer node has crashed
                    # (nothing will ever acknowledge, and crash plans
                    # have no link faults to trigger other recovery).
                    watchdog_armed = True
                    kernel.sim.process(self._batch_watchdog(endpoint))
                # Block while the window is full -- or, after the last
                # fragment, until every acknowledgement has drained.  In
                # adaptive mode the limit is re-read after every wake:
                # acks may have grown it, a loss or pressure episode may
                # have shrunk it.
                while True:
                    limit = 1 if last else (
                        self._window_limit(endpoint) if adaptive else window_k
                    )
                    if len(window) < limit:
                        break
                    ack = kernel.sim.event()
                    endpoint.writer_event = ack
                    endpoint.wake_below = limit
                    try:
                        yield from kernel.block(sp, BlockReason.OUTPUT, ack)
                    finally:
                        endpoint.writer_event = None
                        endpoint.wake_below = 0
        finally:
            endpoint.batch_active = False
            window.clear()
            endpoint.retransmitted.clear()
        self._m_writes.inc()
        kernel.metrics.counter("chan.batched_writes").inc()
        self._m_write_rtt.observe(kernel.sim.now - started_at)

    def _batch_watchdog(self, endpoint: ChannelEndpoint):
        """Generator (kernel context): go-back-N timeout retransmission.

        Started once per batched write, only while a fault plan can lose
        messages (link loss *or* a possible node crash).  Each period it
        re-sends the oldest unacknowledged window entry once that entry
        has actually been outstanding for a full period (the age gate
        keeps a merely-armed watchdog from perturbing fault-free timing);
        the receiver's in-order filter makes a spurious re-send harmless
        (duplicate -> immediate re-ack).  A crashed peer never
        acknowledges and silently swallows every retransmission, so the
        watchdog checks for it first and fails the write instead of
        retransmitting forever.
        """
        kernel = self.kernel
        injector = kernel.sim.faults
        period = injector.plan.channel_retry_timeout_us
        while True:
            yield kernel.sim.timeout(period)
            if not endpoint.batch_active or endpoint.closed:
                return
            if self._abort_if_peer_crashed(endpoint):
                return
            window = endpoint.window
            if not window:
                continue  # between fragments; the write is still active
            xfer = min(window)
            size, frag_payload, sent_at = window[xfer]
            if kernel.sim.now - sent_at < period:
                continue  # not stale yet: the ack is plausibly in flight
            endpoint.retransmitted.add(xfer)
            if kernel.costs.chan_window_adaptive:
                self._window_shrink(endpoint, xfer, "timeout")
            self._m_timeout_retransmits.inc()
            kernel.emit("channel", "channel-timeout-retransmit",
                        data=endpoint.name, eid=endpoint.eid, size=size,
                        xfer=xfer)
            yield kernel.k_exec(
                kernel.costs.chan_send_kernel + kernel.costs.copy_time(size)
            )
            # The ack may have raced in while we were charging the copy.
            if xfer not in endpoint.window or endpoint.closed:
                continue
            kernel.post(
                dst=endpoint.peer_addr,
                size=size,
                kind=MessageKind.CHANNEL_DATA,
                channel=endpoint.peer_eid,
                src_channel=endpoint.eid,
                payload=frag_payload,
                xfer=xfer,
                batched=True,
            )

    def _abort_if_peer_crashed(self, endpoint: ChannelEndpoint) -> bool:
        """Fail a blocked writer whose peer node has crashed.

        Called from the watchdogs (they only run while a fault plan is
        attached).  A crashed node's interfaces silently drop traffic in
        both directions, so no ack, nak, or close will ever arrive: mark
        the endpoint closed and wake the writer with
        :class:`ChannelClosedError`.  Returns True if the peer is down.
        """
        kernel = self.kernel
        injector = kernel.sim.faults
        if (
            injector is None
            or endpoint.peer_addr is None
            or not injector.is_crashed(endpoint.peer_addr)
        ):
            return False
        endpoint.closed = True
        kernel.metrics.counter("chan.peer_crash_aborts").inc()
        kernel.emit("channel", "channel-peer-crash-abort",
                    data=endpoint.name, eid=endpoint.eid,
                    peer=endpoint.peer_addr)
        event = endpoint.writer_event
        if event is not None:
            endpoint.writer_event = None
            event.fail(ChannelClosedError(
                f"channel {endpoint.name!r} peer node "
                f"{endpoint.peer_addr} crashed"
            ))
        return True

    # ------------------------------------------------------------------
    # read (subprocess context)
    # ------------------------------------------------------------------
    def read(self, sp: Subprocess, endpoint: ChannelEndpoint):
        """Generator: return ``(nbytes, payload)`` for the next message."""
        kernel = self.kernel
        costs = kernel.costs
        self._require_open(endpoint)
        kernel.count_syscall("chan_read")
        if endpoint.reader_event is not None:
            raise ChannelBusyError(
                f"channel {endpoint.name!r} already has a read outstanding"
            )
        yield kernel.k_exec(costs.syscall_overhead)
        if endpoint.side_buffers:
            size, payload, owed = endpoint.side_buffers.popleft()
            # Second copy: side buffer -> user buffer.
            yield kernel.k_exec(costs.copy_time(size))
            self._maybe_send_retry(endpoint)
            if owed is not None:
                yield from self._send_owed_ack(endpoint, owed)
            return size, payload
        if endpoint.closed:
            raise ChannelClosedError(f"channel {endpoint.name!r} closed")
        event = kernel.sim.event()
        endpoint.reader_event = event
        endpoint.read_group = None  # plain read: no multiplex group
        try:
            size, payload = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            endpoint.reader_event = None
        return size, payload

    def read_any(self, sp: Subprocess, endpoints: list[ChannelEndpoint]):
        """Generator: multiplexed read -- block until any channel has data.

        Returns ``(endpoint, nbytes, payload)``.  This is the paper's
        "multiplexed read in which a process blocks until data arrives
        from one of several channels".
        """
        kernel = self.kernel
        costs = kernel.costs
        if not endpoints:
            raise ValueError("read_any needs at least one channel")
        seen_eids = set()
        for endpoint in endpoints:
            if endpoint.eid in seen_eids:
                # A duplicate would defeat the busy check below (the
                # reader event is only attached after the loop) and
                # corrupt the read-group teardown.
                raise ValueError(
                    f"duplicate channel {endpoint.name!r} (eid "
                    f"{endpoint.eid}) in read_any"
                )
            seen_eids.add(endpoint.eid)
        kernel.count_syscall("chan_read_any")
        yield kernel.k_exec(costs.syscall_overhead)
        # Validate the *whole* group before consuming any side buffer: a
        # not-open or busy endpoint anywhere in the list must reject the
        # call, even when an earlier endpoint already has buffered data.
        # (Validating inside the scan below accepted invalid members that
        # happened to come after the first hit.)
        for endpoint in endpoints:
            self._require_open(endpoint)
            if endpoint.reader_event is not None:
                raise ChannelBusyError(
                    f"channel {endpoint.name!r} already has a read outstanding"
                )
        # Buffered data on any member wins immediately (FIFO by list order).
        for endpoint in endpoints:
            if endpoint.side_buffers:
                size, payload, owed = endpoint.side_buffers.popleft()
                yield kernel.k_exec(costs.copy_time(size))
                self._maybe_send_retry(endpoint)
                if owed is not None:
                    yield from self._send_owed_ack(endpoint, owed)
                return endpoint, size, payload
        if all(endpoint.closed for endpoint in endpoints):
            # Nothing buffered and every member closed: no data can ever
            # arrive, so blocking would hang forever (mirrors the plain
            # read's closed-and-empty behaviour).
            raise ChannelClosedError(
                "read_any: every channel in the group is closed"
            )
        event = kernel.sim.event()
        group = list(endpoints)
        for endpoint in group:
            endpoint.reader_event = event
            endpoint.read_group = group
        try:
            endpoint, size, payload = yield from kernel.block(
                sp, BlockReason.INPUT, event
            )
        finally:
            for member in group:
                member.reader_event = None
                member.read_group = None
        return endpoint, size, payload

    # ------------------------------------------------------------------
    # interrupt-context handlers (called from the kernel ISR)
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet):
        """Generator (ISR context): an incoming channel data message."""
        kernel = self.kernel
        costs = kernel.costs
        if packet.corrupted:
            # Undecodable fragment: read it in, discard it, and ask the
            # sender (addressed by the id in the damaged header's
            # still-checksummed trailer) to retransmit right away.
            yield kernel.isr_exec(
                costs.chan_recv_kernel + costs.copy_time(packet.size)
            )
            self._m_corrupt_drops.inc()
            kernel.emit("channel", "channel-corrupt-drop", src=packet.src,
                        size=packet.size, xfer=packet.xfer)
            yield kernel.isr_exec(costs.chan_ack_send)
            kernel.post(
                dst=packet.src,
                size=costs.chan_ack_bytes,
                kind=MessageKind.CHANNEL_CTRL,
                channel=packet.src_channel,
                payload=CTRL_RETRY,
            )
            return
        endpoint = self.endpoints.get(packet.channel)
        if endpoint is None or endpoint.closed:
            # Stale data for a closed channel: consume and drop.
            yield kernel.isr_exec(costs.chan_recv_kernel)
            return
        yield kernel.isr_exec(
            costs.chan_recv_kernel + costs.copy_time(packet.size)
        )
        if packet.xfer is not None and packet.xfer <= endpoint.last_xfer:
            # Duplicate fragment (injected, or a spurious retransmission
            # after a lost/late ack): discard, but re-ack -- the sender
            # may still be waiting because the first ack was lost.
            self._m_duplicate_drops.inc()
            kernel.emit("channel", "channel-duplicate-drop",
                        data=endpoint.name, eid=endpoint.eid,
                        xfer=packet.xfer)
            yield kernel.isr_exec(costs.chan_ack_send)
            kernel.post(
                dst=packet.src,
                size=costs.chan_ack_bytes,
                kind=MessageKind.CHANNEL_ACK,
                channel=packet.src_channel,
                xfer=packet.xfer,
            )
            if packet.batched:
                # The re-ack is cumulative at the sender and may have
                # freed window slots; pull one owed retransmission so a
                # gap behind this duplicate keeps healing.
                self._pull_retry(endpoint)
            return
        if packet.xfer is not None and packet.xfer > endpoint.last_xfer + 1:
            # Sequence gap: an earlier fragment of a pipelined (batched)
            # write was lost in flight or dropped for starvation.
            # Accepting this one would let the duplicate filter discard
            # the retransmission of the missing fragment, so drop it
            # unacknowledged -- the sender's go-back-N machinery
            # (pull-retries, timeout watchdog) re-sends in order.
            # Unreachable under stop-and-wait, which never advances past
            # an unacknowledged fragment.
            kernel.metrics.counter("chan.ooo_drops").inc()
            kernel.emit("channel", "channel-ooo-drop", data=endpoint.name,
                        eid=endpoint.eid, xfer=packet.xfer)
            if packet.batched:
                endpoint.owed_pulls += 1
            return
        delivered = False
        ack_now = True
        if endpoint.reader_event is not None:
            event = endpoint.reader_event
            group = endpoint.read_group
            if group is None:
                # Plain read: deliver (size, payload).
                endpoint.reader_event = None
                event.succeed((packet.size, packet.payload))
            else:
                # Multiplexed read: identify which channel fired.
                for member in group:
                    member.reader_event = None
                    member.read_group = None
                event.succeed((endpoint, packet.size, packet.payload))
            delivered = True
        elif len(endpoint.side_buffers) < costs.chan_side_buffers:
            if packet.batched:
                # Defer the ack until a reader consumes this buffer:
                # that read is what frees the sender's window slot, so
                # the batched window advances at the reader's pace.
                owed = (packet.xfer, packet.src, packet.src_channel)
                ack_now = False
            else:
                owed = None
            endpoint.side_buffers.append((packet.size, packet.payload, owed))
            delivered = True
        if not delivered:
            # No buffer space: drop and owe a retransmission request.
            if packet.batched:
                # Pulled one-per-read rather than flagged: several
                # pipelined fragments can be dropped back to back.
                endpoint.owed_pulls += 1
            else:
                endpoint.starved_peer = True
            self._m_naks.inc()
            kernel.emit("channel", "channel-nak", data=endpoint.name,
                        eid=endpoint.eid, size=packet.size)
            return
        if packet.xfer is not None:
            endpoint.last_xfer = packet.xfer
        endpoint.messages_received += 1
        endpoint.bytes_received += packet.size
        self._m_frags_received.value += 1.0
        self._m_bytes_received.value += packet.size
        if not ack_now:
            return
        yield kernel.isr_exec(costs.chan_ack_send)
        # Address the ack with the sender's endpoint id from the data
        # header: our own rendezvous reply may still be in flight, so
        # endpoint.peer_eid cannot be relied on here.  The ack echoes the
        # fragment's transfer id so a late re-ack (from the duplicate
        # filter) cannot acknowledge a newer fragment.  Batched acks
        # under an adaptive model also report side-buffer occupancy so
        # the sender's window can back off before starvation.
        kernel.post(
            dst=packet.src,
            size=costs.chan_ack_bytes,
            kind=MessageKind.CHANNEL_ACK,
            channel=packet.src_channel,
            payload=self._ack_pressure(endpoint) if packet.batched else None,
            xfer=packet.xfer,
        )
        if packet.batched:
            # A directly-consumed batched fragment plays the same role as
            # a consuming read: pull one owed retransmission, so gap
            # recovery proceeds one fragment per round trip even while
            # the reader stays blocked in read().
            self._pull_retry(endpoint)

    def on_ack(self, packet: Packet):
        """Generator (ISR context): stop-and-wait acknowledgement."""
        kernel = self.kernel
        yield kernel.isr_exec(kernel.costs.chan_ack_recv)
        if packet.corrupted:
            # An undecodable ack is a lost ack; the writer's watchdog
            # retransmits and the duplicate filter re-acks.
            self._m_corrupt_drops.inc()
            kernel.emit("channel", "channel-corrupt-drop", src=packet.src,
                        size=packet.size, kind="ack")
            return
        endpoint = self.endpoints.get(packet.channel)
        if endpoint is None:
            return
        if endpoint.window:
            # Batched write in flight: acknowledgements are cumulative.
            # ``packet.xfer`` retires every window entry up to and
            # including itself (a lost ack is covered by the next one);
            # per-fragment counters move here, mirroring the receiver's
            # per-arrival counting, so cdb's two directions agree.
            if packet.xfer is None:
                return
            window = endpoint.window
            costs = kernel.costs
            acked = [xfer for xfer in window if xfer <= packet.xfer]
            if not acked:
                return  # stale re-ack for an already-retired fragment
            rtt_sample = None
            for xfer in acked:
                size, _, sent_at = window.pop(xfer)
                endpoint.messages_sent += 1
                endpoint.bytes_sent += size
                self._m_frags_sent.inc()
                self._m_bytes_sent.inc(size)
                # Karn's algorithm: a retransmitted fragment's ack is
                # ambiguous (first send or re-send?), so it yields no
                # RTT sample.  Sample the fragment the ack names.
                if xfer == packet.xfer and xfer not in endpoint.retransmitted:
                    rtt_sample = kernel.sim.now - sent_at
                endpoint.retransmitted.discard(xfer)
            if costs.chan_window_adaptive:
                shrunk = False
                # Receiver pressure rides on batched acks as the
                # side-buffer occupancy fraction (see _ack_pressure).
                occupancy = packet.payload
                if (
                    isinstance(occupancy, float)
                    and occupancy >= costs.chan_pressure_threshold
                ):
                    shrunk = self._window_shrink(
                        endpoint, packet.xfer, "pressure"
                    )
                if rtt_sample is not None:
                    if (
                        not shrunk
                        and endpoint.srtt > 0.0
                        and rtt_sample
                        > costs.chan_rtt_inflation * endpoint.srtt
                    ):
                        shrunk = self._window_shrink(
                            endpoint, packet.xfer, "rtt"
                        )
                    alpha = costs.chan_rtt_alpha
                    endpoint.srtt = (
                        rtt_sample if endpoint.srtt == 0.0
                        else (1.0 - alpha) * endpoint.srtt
                        + alpha * rtt_sample
                    )
                if not shrunk:
                    self._window_grow(endpoint, len(acked))
            event = endpoint.writer_event
            if event is not None and len(window) < endpoint.wake_below:
                endpoint.writer_event = None
                event.succeed()
            return
        if endpoint.writer_event is None:
            return
        if (
            packet.xfer is not None
            and endpoint.unacked is not None
            and packet.xfer != endpoint.unacked[2]
        ):
            # A stale ack (duplicate re-ack for an earlier fragment) must
            # not acknowledge the fragment currently on the wire.
            return
        event = endpoint.writer_event
        endpoint.writer_event = None
        endpoint.unacked = None
        event.succeed()

    def on_ctrl(self, packet: Packet):
        """Generator (ISR context): close and retry control traffic."""
        kernel = self.kernel
        yield kernel.isr_exec(kernel.costs.chan_ack_recv)
        if packet.corrupted:
            self._m_corrupt_drops.inc()
            kernel.emit("channel", "channel-corrupt-drop", src=packet.src,
                        size=packet.size, kind="ctrl")
            return
        endpoint = self.endpoints.get(packet.channel)
        if endpoint is None:
            return
        if packet.payload == CTRL_CLOSE:
            endpoint.closed = True
            if endpoint.reader_event is not None:
                event = endpoint.reader_event
                for member in endpoint.read_group or [endpoint]:
                    member.reader_event = None
                    member.read_group = None
                event.fail(ChannelClosedError(
                    f"channel {endpoint.name!r} closed by peer"
                ))
            if endpoint.window:
                # Batched write in flight.  The close acknowledges, like
                # a cumulative ack, everything the peer delivered before
                # closing: those fragments succeeded even if their own
                # acks were lost.
                window = endpoint.window
                if packet.xfer is not None:
                    for xfer in [x for x in sorted(window)
                                 if x <= packet.xfer]:
                        size, _, _ = window.pop(xfer)
                        endpoint.messages_sent += 1
                        endpoint.bytes_sent += size
                        self._m_frags_sent.inc()
                        self._m_bytes_sent.inc(size)
                event = endpoint.writer_event
                if event is not None:
                    endpoint.writer_event = None
                    if window:
                        # Undelivered fragments remain: the write fails.
                        event.fail(ChannelClosedError(
                            f"channel {endpoint.name!r} closed by peer"
                        ))
                    else:
                        # Every in-flight fragment was delivered before
                        # the close.  Wake the writer: mid-write it
                        # observes ``closed`` at the next fragment and
                        # raises there; on the final drain it completes.
                        event.succeed()
                # A writer mid-charge (not blocked) sees ``closed`` at
                # its next fragment boundary and raises there.
            elif endpoint.writer_event is not None:
                event = endpoint.writer_event
                endpoint.writer_event = None
                if (
                    endpoint.unacked is not None
                    and packet.xfer is not None
                    and endpoint.unacked[2] <= packet.xfer
                ):
                    # The peer read our fragment (its close acknowledges
                    # up to packet.xfer) but the ack itself was lost:
                    # the write succeeded, then the channel closed.
                    endpoint.unacked = None
                    event.succeed()
                else:
                    event.fail(ChannelClosedError(
                        f"channel {endpoint.name!r} closed by peer"
                    ))
        elif packet.payload == CTRL_RETRY:
            if endpoint.window:
                # Batched write: re-send the *oldest* unacknowledged
                # window entry (go-back-N -- the receiver accepts only in
                # transfer-id order, and each pull requests exactly one
                # fragment).
                xfer = min(endpoint.window)
                size, frag_payload, _ = endpoint.window[xfer]
                endpoint.retransmitted.add(xfer)
                if kernel.costs.chan_window_adaptive:
                    # A pulled retransmission means the receiver dropped
                    # a fragment (starvation or loss): a go-back-N shrink
                    # trigger.
                    self._window_shrink(endpoint, xfer, "retry")
                self._m_retransmits.inc()
                kernel.emit("channel", "channel-retransmit",
                            data=endpoint.name, eid=endpoint.eid, size=size)
                yield kernel.isr_exec(
                    kernel.costs.chan_send_kernel + kernel.costs.copy_time(size)
                )
                # The ack may have raced in while we were charging.
                if xfer in endpoint.window and not endpoint.closed:
                    kernel.post(
                        dst=endpoint.peer_addr,
                        size=size,
                        kind=MessageKind.CHANNEL_DATA,
                        channel=endpoint.peer_eid,
                        src_channel=endpoint.eid,
                        payload=frag_payload,
                        xfer=xfer,
                        batched=True,
                    )
            elif endpoint.unacked is not None:
                # The receiver dropped our fragment (buffer starvation or
                # corruption) and wants it again: retransmit the unacked
                # one.
                size, payload, xfer = endpoint.unacked
                self._m_retransmits.inc()
                kernel.emit("channel", "channel-retransmit",
                            data=endpoint.name, eid=endpoint.eid, size=size)
                yield kernel.isr_exec(
                    kernel.costs.chan_send_kernel + kernel.costs.copy_time(size)
                )
                kernel.post(
                    dst=endpoint.peer_addr,
                    size=size,
                    kind=MessageKind.CHANNEL_DATA,
                    channel=endpoint.peer_eid,
                    src_channel=endpoint.eid,
                    payload=payload,
                    xfer=xfer,
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _maybe_send_retry(self, endpoint: ChannelEndpoint) -> None:
        if endpoint.starved_peer:
            endpoint.starved_peer = False
            self.kernel.post(
                dst=endpoint.peer_addr,
                size=self.kernel.costs.chan_ack_bytes,
                kind=MessageKind.CHANNEL_CTRL,
                channel=endpoint.peer_eid,
                payload=CTRL_RETRY,
            )
        self._pull_retry(endpoint)

    def _pull_retry(self, endpoint: ChannelEndpoint) -> None:
        """Request retransmission of one owed (dropped) batched fragment.

        Decrements :attr:`ChannelEndpoint.owed_pulls` by exactly one per
        call so the retry rate tracks the consumption rate -- the sender
        always re-sends its oldest window entry, so one pull heals one
        fragment of a gap.
        """
        if endpoint.owed_pulls <= 0:
            return
        if endpoint.peer_addr is None or endpoint.peer_eid is None:
            return
        endpoint.owed_pulls -= 1
        self.kernel.post(
            dst=endpoint.peer_addr,
            size=self.kernel.costs.chan_ack_bytes,
            kind=MessageKind.CHANNEL_CTRL,
            channel=endpoint.peer_eid,
            payload=CTRL_RETRY,
        )

    def _send_owed_ack(
        self, endpoint: ChannelEndpoint, owed: tuple[int, int, int]
    ):
        """Generator: send the deferred ack a batched fragment earned.

        Consuming the side buffer is what frees the sender's window
        slot; the ack is cumulative at the sender, so a lost earlier ack
        is covered by this one.  Under an adaptive model it reports the
        *post-consumption* side-buffer occupancy (the pressure the
        sender's next window decision should see).
        """
        kernel = self.kernel
        xfer, src, src_channel = owed
        yield kernel.k_exec(kernel.costs.chan_ack_send)
        kernel.post(
            dst=src,
            size=kernel.costs.chan_ack_bytes,
            kind=MessageKind.CHANNEL_ACK,
            channel=src_channel,
            payload=self._ack_pressure(endpoint),
            xfer=xfer,
        )

    @staticmethod
    def _require_open(endpoint: ChannelEndpoint) -> None:
        if not endpoint.open:
            raise ChannelStateError(f"channel {endpoint.name!r} is not open")

    def snapshot(self) -> list[dict]:
        """Channel state for the communications debugger (cdb)."""
        rows = []
        for endpoint in self.endpoints.values():
            rows.append(
                {
                    "name": endpoint.name,
                    "eid": endpoint.eid,
                    "node": self.kernel.address,
                    "subprocess": endpoint.sp.uid,
                    "peer_addr": endpoint.peer_addr,
                    "peer_eid": endpoint.peer_eid,
                    "sent": endpoint.messages_sent,
                    "received": endpoint.messages_received,
                    "bytes_sent": endpoint.bytes_sent,
                    "bytes_received": endpoint.bytes_received,
                    "reader_blocked": endpoint.reader_blocked,
                    "writer_blocked": endpoint.writer_blocked,
                    "buffered": len(endpoint.side_buffers),
                    "open": endpoint.open,
                    "closed": endpoint.closed,
                }
            )
        return rows
