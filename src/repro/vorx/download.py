"""Program download: per-process stubs versus the tree scheme (Section 3.3).

Paper anchors: *"it takes 12 seconds to download and initialize a process
on each of 70 processors.  Most of this time can be attributed to work
centralized on the host"* versus *"With this method [the fan-out tree],
it takes only two seconds to download and start 70 processes."*

Two schemes:

* :func:`download_per_process` -- for every node process the host creates
  a stub, sets up its channels, reads the a.out, and pushes the text down
  itself.  All of that work is serialized on the host CPU.
* :func:`download_tree` -- one stub downloads one node; that node copies
  the text to two others as it is received, and the fan-out continues
  (store-and-forward pipeline at chunk granularity).  The host's
  remaining per-process work is just process start-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hpc.message import MessageKind, Packet
from repro.vorx.errors import DownloadError
from repro.vorx.subprocesses import BlockReason

if TYPE_CHECKING:  # pragma: no cover
    from repro.vorx.kernel import NodeKernel
    from repro.vorx.system import VorxSystem


@dataclass(frozen=True)
class DownloadResult:
    """Outcome of one download experiment."""

    scheme: str
    n_processes: int
    text_bytes: int
    elapsed_us: float
    stubs_created: int

    @property
    def seconds(self) -> float:
        return self.elapsed_us / 1e6


class DownloadService:
    """Node-side receiver/forwarder for program text."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        #: Fabric addresses to forward every chunk to (tree scheme).
        self.children: list[int] = []
        self.expected_bytes = 0
        self.received_bytes = 0
        self.report_to: Optional[int] = None
        self._reported = False
        kernel.register_handler(MessageKind.DOWNLOAD, self._on_chunk)
        kernel.download = self  # type: ignore[attr-defined]

    def reset(self, expected_bytes: int, report_to: int,
              children: Optional[list[int]] = None) -> None:
        self.expected_bytes = expected_bytes
        self.received_bytes = 0
        self.report_to = report_to
        self._reported = False
        self.children = list(children or [])

    def _on_chunk(self, packet: Packet):
        """Generator (ISR context): store (and forward) one text chunk."""
        kernel = self.kernel
        costs = kernel.costs
        body = packet.payload
        if body.get("op") == "done-ack":
            # Host-side bookkeeping handled by DownloadMonitor; ignore here.
            yield kernel.isr_exec(costs.chan_ack_recv)
            return
        if self.children:
            # Store and forward to both children as the text arrives.
            yield kernel.isr_exec(costs.tree_forward_per_byte * packet.size)
            for child in self.children:
                kernel.post(
                    dst=child, size=packet.size, kind=MessageKind.DOWNLOAD,
                    payload=body,
                )
        else:
            yield kernel.isr_exec(costs.copy_per_byte * packet.size)
        self.received_bytes += packet.size
        if self.received_bytes >= self.expected_bytes and not self._reported:
            self._reported = True
            if self.report_to is not None:
                kernel.post(
                    dst=self.report_to, size=16, kind=MessageKind.DOWNLOAD,
                    payload={"op": "done-ack", "node": kernel.address},
                )


class DownloadMonitor:
    """Host-side completion counter for outstanding downloads."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        self.remaining = 0
        self.done_event = None
        kernel.register_handler(MessageKind.DOWNLOAD, self._on_done)

    def expect(self, count: int):
        self.remaining = count
        self.done_event = self.kernel.sim.event()
        return self.done_event

    def _on_done(self, packet: Packet):
        yield self.kernel.isr_exec(self.kernel.costs.chan_ack_recv)
        if packet.payload.get("op") != "done-ack":
            return
        self.remaining -= 1
        if self.remaining == 0 and self.done_event is not None:
            self.done_event.succeed()


def _ensure_services(system: "VorxSystem", host_index: int,
                     node_indices: list[int]) -> DownloadMonitor:
    host = system.workstation(host_index)
    monitor = getattr(host, "download_monitor", None)
    if monitor is None:
        monitor = DownloadMonitor(host)
        host.download_monitor = monitor  # type: ignore[attr-defined]
    for index in node_indices:
        kernel = system.node(index)
        if getattr(kernel, "download", None) is None:
            DownloadService(kernel)
    return monitor


def _send_text(env, dst: int, text_bytes: int) -> None:
    """Host pushes the program text to ``dst`` in chunk-sized messages.

    Caller must have charged the disk read; this charges the per-byte
    host network send cost and posts the chunks (the fabric paces itself
    through hardware flow control).
    """
    costs = env.kernel.costs
    remaining = text_bytes
    while remaining > 0:
        chunk = min(remaining, costs.download_chunk_bytes)
        remaining -= chunk
        yield from env.compute(costs.host_net_per_byte * chunk, label="net-send")
        env.kernel.post(
            dst=dst, size=chunk, kind=MessageKind.DOWNLOAD,
            payload={"op": "text"},
        )


def download_per_process(
    system: "VorxSystem",
    host_index: int,
    node_indices: list[int],
    text_bytes: Optional[int] = None,
) -> DownloadResult:
    """Section 3.3's slow path: one stub + one full download per process."""
    if not node_indices:
        raise DownloadError("no target nodes")
    costs = system.costs
    text = text_bytes if text_bytes is not None else costs.program_text_bytes
    monitor = _ensure_services(system, host_index, node_indices)
    host = system.workstation(host_index)
    result: dict = {}

    def host_program(env):
        start = env.now
        done = monitor.expect(len(node_indices))
        for index in node_indices:
            node = system.node(index)
            node.download.reset(text, host.address)
            # Host-centralized work, all serialized here:
            yield from env.compute(costs.stub_create, label="fork-stub")
            yield from env.compute(costs.stub_channel_setup, label="stub-chans")
            yield from env.compute(costs.download_process_fixed, label="proc-init")
            # "each stub independently downloads a copy of the program"
            yield from env.compute(costs.host_disk_per_byte * text, label="disk")
            yield from _send_text(env, node.address, text)
        yield from env.kernel.block(env.subprocess, BlockReason.INPUT, done)
        result["elapsed"] = env.now - start

    program = host.spawn(host_program, name="downloader")
    system.run_until_complete([program])
    return DownloadResult(
        scheme="per-process",
        n_processes=len(node_indices),
        text_bytes=text,
        elapsed_us=result["elapsed"],
        stubs_created=len(node_indices),
    )


def download_tree(
    system: "VorxSystem",
    host_index: int,
    node_indices: list[int],
    fanout: int = 2,
    text_bytes: Optional[int] = None,
) -> DownloadResult:
    """Section 3.3's fast path: one stub, fan-out tree of copies."""
    if not node_indices:
        raise DownloadError("no target nodes")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    costs = system.costs
    text = text_bytes if text_bytes is not None else costs.program_text_bytes
    monitor = _ensure_services(system, host_index, node_indices)
    host = system.workstation(host_index)
    result: dict = {}

    # Build the fan-out tree over the listed nodes.
    def children_of(position: int) -> list[int]:
        return [
            node_indices[child]
            for child in range(position * fanout + 1,
                               min(position * fanout + fanout + 1,
                                   len(node_indices)))
        ]

    def host_program(env):
        start = env.now
        done = monitor.expect(len(node_indices))
        for position, index in enumerate(node_indices):
            system.node(index).download.reset(
                text, host.address,
                children=[system.node(c).address for c in children_of(position)],
            )
        # One stub serves the whole application.
        yield from env.compute(costs.stub_create, label="fork-stub")
        yield from env.compute(costs.stub_channel_setup, label="stub-chans")
        yield from env.compute(costs.host_disk_per_byte * text, label="disk")
        # Download only the root; the tree replicates.
        yield from _send_text(env, system.node(node_indices[0]).address, text)
        # Host still starts every process (the remaining per-process work).
        for index in node_indices:
            yield from env.compute(costs.download_process_fixed, label="proc-init")
        yield from env.kernel.block(env.subprocess, BlockReason.INPUT, done)
        result["elapsed"] = env.now - start

    program = host.spawn(host_program, name="tree-downloader")
    system.run_until_complete([program])
    return DownloadResult(
        scheme="tree",
        n_processes=len(node_indices),
        text_bytes=text,
        elapsed_us=result["elapsed"],
        stubs_created=1,
    )
