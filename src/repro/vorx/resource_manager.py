"""Processor allocation policies (paper Section 3.1).

Meglos allocated processors *when an application started running* and
returned them to the free pool when it finished -- maximising sharing,
but causing the notorious failure mode: while a programmer recompiles,
someone else grabs the processors with exclusive access, and the rerun
greets the programmer with **"processors not available"**.

VORX instead requires a user to *allocate* the processors for a whole
development session; nobody else can take them until the user explicitly
frees them.  The cost is the dual failure mode: users forget to free
processors, so VORX also provides a (dangerous) command to free another
user's processors.

:class:`ProcessorPool` implements both policies behind one interface, and
:func:`simulate_development` runs the Monte-Carlo developer workload used
by experiment E12: edit/compile/run cycles for several developers sharing
one machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.vorx.errors import AllocationError


class ProcessorPool:
    """The machine's pool of processing nodes with ownership tracking."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 1:
            raise ValueError(f"need at least one processor, got {n_processors}")
        self.n_processors = n_processors
        #: processor index -> owning user (None = free).
        self.owner: dict[int, Optional[str]] = {i: None for i in range(n_processors)}
        #: processor index -> running application name (None = idle).
        self.running: dict[int, Optional[str]] = {
            i: None for i in range(n_processors)
        }
        self.allocation_failures = 0
        self.force_frees = 0

    # -- queries -----------------------------------------------------------
    def free_processors(self) -> list[int]:
        return [i for i, user in self.owner.items() if user is None]

    def owned_by(self, user: str) -> list[int]:
        return [i for i, owner in self.owner.items() if owner == user]

    def idle_owned_by(self, user: str) -> list[int]:
        return [i for i in self.owned_by(user) if self.running[i] is None]

    # -- VORX policy: allocate-for-session -------------------------------------
    def allocate(self, user: str, count: int) -> list[int]:
        """Reserve ``count`` processors for ``user`` until freed.

        Raises :class:`AllocationError` ("processors not available") if
        the free pool is too small.
        """
        free = self.free_processors()
        if len(free) < count:
            self.allocation_failures += 1
            raise AllocationError(
                f"processors not available: {user} wants {count}, "
                f"{len(free)} free"
            )
        taken = free[:count]
        for i in taken:
            self.owner[i] = user
        return taken

    def free(self, user: str, processors: Optional[list[int]] = None) -> int:
        """Release ``user``'s processors (all of them by default)."""
        targets = processors if processors is not None else self.owned_by(user)
        released = 0
        for i in targets:
            if self.owner[i] != user:
                raise AllocationError(
                    f"{user} does not own processor {i} "
                    f"(owner: {self.owner[i]})"
                )
            if self.running[i] is not None:
                raise AllocationError(
                    f"processor {i} is still running {self.running[i]}"
                )
            self.owner[i] = None
            released += 1
        return released

    def force_free(self, requestor: str, victim: str) -> int:
        """The paper's carefully-used command: free another user's
        processors."""
        self.force_frees += 1
        count = 0
        for i in self.owned_by(victim):
            self.running[i] = None
            self.owner[i] = None
            count += 1
        return count

    # -- running applications ------------------------------------------------------
    def start_run(self, user: str, app: str, count: int, policy: str) -> list[int]:
        """Bind ``count`` processors to a run of ``app``.

        ``policy="meglos"`` draws directly from the free pool (exclusive
        access, allocate-on-run); ``policy="vorx"`` draws from the user's
        session allocation.  Raises :class:`AllocationError` on shortage.
        """
        if policy == "meglos":
            free = self.free_processors()
            if len(free) < count:
                self.allocation_failures += 1
                raise AllocationError(
                    f"processors not available: {app} wants {count}, "
                    f"{len(free)} free"
                )
            taken = free[:count]
            for i in taken:
                self.owner[i] = user
                self.running[i] = app
            return taken
        if policy == "vorx":
            idle = self.idle_owned_by(user)
            if len(idle) < count:
                self.allocation_failures += 1
                raise AllocationError(
                    f"{user} owns only {len(idle)} idle processors, "
                    f"{app} wants {count}"
                )
            taken = idle[:count]
            for i in taken:
                self.running[i] = app
            return taken
        raise ValueError(f"unknown policy {policy!r}")

    def end_run(self, processors: list[int], policy: str) -> None:
        """A run finished; under Meglos the processors return to the pool."""
        for i in processors:
            self.running[i] = None
            if policy == "meglos":
                self.owner[i] = None

    def utilisation(self) -> float:
        """Fraction of processors currently bound to a running app."""
        busy = sum(1 for app in self.running.values() if app is not None)
        return busy / self.n_processors


@dataclass
class DeveloperStats:
    """Per-developer outcome of the Monte-Carlo workload."""

    user: str
    runs_attempted: int = 0
    runs_completed: int = 0
    failures: int = 0  # "processors not available"
    wait_time: float = 0.0  # time lost to retries


@dataclass
class DevelopmentResult:
    """Outcome of :func:`simulate_development`."""

    policy: str
    stats: list[DeveloperStats]
    #: Time-averaged fraction of processors held but idle (the VORX
    #: policy's cost, especially with forgotten frees).
    held_idle_fraction: float
    force_frees: int

    @property
    def total_failures(self) -> int:
        return sum(s.failures for s in self.stats)

    @property
    def failure_rate(self) -> float:
        attempts = sum(s.runs_attempted for s in self.stats)
        return self.total_failures / attempts if attempts else 0.0


def simulate_development(
    policy: str,
    n_processors: int = 8,
    n_developers: int = 3,
    processors_per_app: int = 4,
    n_cycles: int = 40,
    edit_mean_us: float = 180e6,  # ~3 minutes editing/recompiling
    run_mean_us: float = 60e6,  # ~1 minute test run
    forget_free_probability: float = 0.15,
    forgotten_hold_us: float = 3_600e6,  # "no activity for several hours"
    seed: int = 1990,
) -> DevelopmentResult:
    """Monte-Carlo reproduction of the Section 3.1 developer contention.

    Each developer loops: edit/recompile (exponential think time), then
    run their application on ``processors_per_app`` processors.  Under
    ``meglos`` the run may fail with "processors not available" (someone
    else grabbed them mid-edit); the developer retries after a delay.
    Under ``vorx`` each developer allocates a session's worth up front
    and can always rerun -- but with probability
    ``forget_free_probability`` a finished developer forgets to free, and
    the processors sit idle until an operator force-frees them.
    """
    if policy not in ("meglos", "vorx"):
        raise ValueError(f"unknown policy {policy!r}")
    sim = Simulator()
    rng = random.Random(seed)
    pool = ProcessorPool(n_processors)
    stats = [DeveloperStats(user=f"dev{i}") for i in range(n_developers)]
    # Integrated (processors held but idle) x time, for the utilisation cost.
    held_idle_area = [0.0]
    last_sample = [0.0]

    def sample_held_idle() -> None:
        now = sim.now
        held_idle = sum(
            1
            for i, user in pool.owner.items()
            if user is not None and pool.running[i] is None
        )
        held_idle_area[0] += held_idle * (now - last_sample[0])
        last_sample[0] = now

    def developer(stat: DeveloperStats):
        user = stat.user
        if policy == "vorx":
            # Allocate the session's processors up front; retry until the
            # pool has room (e.g. a predecessor's forgotten allocation
            # must be force-freed first).
            while True:
                sample_held_idle()
                try:
                    pool.allocate(user, processors_per_app)
                    break
                except AllocationError:
                    yield sim.timeout(rng.expovariate(1.0 / (30e6)))
        for _ in range(n_cycles):
            # Edit / recompile.
            yield sim.timeout(rng.expovariate(1.0 / edit_mean_us))
            # Run.
            stat.runs_attempted += 1
            while True:
                sample_held_idle()
                try:
                    procs = pool.start_run(user, f"{user}-app",
                                           processors_per_app, policy)
                    break
                except AllocationError:
                    stat.failures += 1
                    stat.runs_attempted += 1
                    retry = rng.expovariate(1.0 / (20e6))
                    stat.wait_time += retry
                    yield sim.timeout(retry)
            yield sim.timeout(rng.expovariate(1.0 / run_mean_us))
            sample_held_idle()
            pool.end_run(procs, policy)
        # Session over.
        if policy == "vorx":
            sample_held_idle()
            if rng.random() < forget_free_probability:
                # Forgotten: processors sit idle until force-freed.
                yield sim.timeout(forgotten_hold_us)
                sample_held_idle()
                pool.force_free("operator", user)
            else:
                pool.free(user)

    for stat in stats:
        sim.process(developer(stat))
    sim.run()
    sample_held_idle()
    total_area = n_processors * sim.now if sim.now > 0 else 1.0
    return DevelopmentResult(
        policy=policy,
        stats=stats,
        held_idle_fraction=held_idle_area[0] / total_area,
        force_frees=pool.force_frees,
    )
