"""Host stub processes and forwarded UNIX system calls (Section 3.3).

*"Each process running on a processing node has a stub process running on
the host.  ...  Each time a system call (such as a write to a file) is
executed on the processing node, it sends a message to the stub.  The
stub then executes the system call and passes the results back to the
node.  This method perfectly replicates the host environment on the
node."*

Both stub organisations are supported:

* **one stub per process** -- perfect replication: every node process has
  its own fd table and blocking calls affect only that process;
* **shared stub** -- one stub serves many processes of an application:
  much cheaper to start (see :mod:`repro.vorx.download`), but a blocking
  system call from one process stalls *all* of them, and the SunOS
  32-descriptor limit is shared across the whole application.

Experiment E17 reproduces both pathologies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.hostos.filesystem import FileSystem
from repro.hostos.unix import HostProcess
from repro.hpc.message import MessageKind, Packet
from repro.sim.resources import Store
from repro.vorx.errors import SyscallError
from repro.vorx.subprocesses import BlockReason, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.vorx.kernel import NodeKernel
    from repro.vorx.system import VorxSystem

#: Wire size of a syscall request (marshalled op + args), excluding bulk data.
SYSCALL_REQUEST_BYTES = 64
#: Wire size of a syscall reply, excluding bulk data.
SYSCALL_REPLY_BYTES = 32


class Stub:
    """One stub process on the host."""

    def __init__(
        self,
        service: "StubService",
        stub_id: int,
        fd_limit: int,
    ) -> None:
        self.service = service
        self.stub_id = stub_id
        host = service.kernel
        self.process = HostProcess(
            f"stub{stub_id}@{host.name}", service.filesystem, fd_limit
        )
        self.requests: Store = Store(host.sim)
        self.calls_served = 0
        self.subprocess: Optional[Subprocess] = None

    def start(self) -> None:
        """Spawn the stub's server loop as a host subprocess."""
        self.subprocess = self.service.kernel.spawn(
            self._serve, name=f"stub{self.stub_id}",
            process_name=f"stub{self.stub_id}",
        )

    def _serve(self, env):
        """The stub's main loop: serve forwarded calls one at a time.

        This serialisation is the point: a blocking call (e.g. a read
        from the keyboard) stalls every other process served by this stub
        until it completes (Section 3.3).
        """
        costs = env.kernel.costs
        while True:
            if len(self.requests) == 0:
                event = self.requests.get()
                request = yield from env.kernel.block(
                    env.subprocess, BlockReason.INPUT, event
                )
            else:
                request = (yield self.requests.get())
            src, token, op, args = request
            if op == "_shutdown":
                return
            yield from env.compute(costs.stub_syscall, label=f"sys-{op}")
            ok, value = True, None
            try:
                if op == "stdin_read":
                    # A blocking call: the stub sleeps until "input" is
                    # typed, stalling every request behind it.
                    (duration,) = args
                    yield from env.sleep(duration)
                    value = b"line\n"
                elif op == "open":
                    value = self.process.open(*args)
                elif op == "close":
                    value = self.process.close(*args)
                elif op == "read":
                    value = self.process.read(*args)
                elif op == "write":
                    fd, payload = args
                    value = self.process.write(fd, payload)
                elif op == "seek":
                    value = self.process.seek(*args)
                elif op == "create":
                    path, data = args
                    self.service.filesystem.create(path, data)
                elif op == "unlink":
                    self.service.filesystem.unlink(args[0])
                elif op == "stat":
                    value = self.service.filesystem.size(args[0])
                elif op == "getpid":
                    value = 1000 + self.stub_id
                else:
                    ok, value = False, f"ENOSYS: {op}"
            except OSError as exc:
                ok, value = False, f"{exc.args[0]}: {exc.args[1]}"
            except Exception as exc:  # filesystem errors etc.
                ok, value = False, f"EIO: {exc}"
            self.calls_served += 1
            reply_size = SYSCALL_REPLY_BYTES + (
                len(value) if isinstance(value, (bytes, bytearray)) else 0
            )
            env.kernel.post(
                dst=src, size=min(reply_size, costs.hpc_max_message),
                kind=MessageKind.SYSCALL_REPLY,
                payload={"token": token, "ok": ok, "value": value},
            )


class StubService:
    """Host-side service owning every stub on one workstation."""

    def __init__(self, kernel: "NodeKernel",
                 filesystem: Optional[FileSystem] = None) -> None:
        if not kernel.is_host:
            raise ValueError(f"{kernel.name} is not a host workstation")
        self.kernel = kernel
        self.filesystem = filesystem or FileSystem()
        self.stubs: dict[int, Stub] = {}
        self._next_stub_id = 1
        kernel.register_handler(MessageKind.SYSCALL, self._on_syscall)
        kernel.stub_service = self  # type: ignore[attr-defined]

    def create_stub(self, fd_limit: Optional[int] = None) -> Stub:
        """Create and start one stub process (bookkeeping only; callers
        performing a realistic start-up charge ``stub_create`` etc.)."""
        stub = Stub(
            self, self._next_stub_id,
            fd_limit if fd_limit is not None else self.kernel.costs.host_fd_limit,
        )
        self._next_stub_id += 1
        self.stubs[stub.stub_id] = stub
        stub.start()
        return stub

    def _on_syscall(self, packet: Packet):
        """Generator (ISR context): queue a forwarded call on its stub."""
        kernel = self.kernel
        yield kernel.isr_exec(
            kernel.costs.chan_recv_kernel + kernel.costs.copy_time(packet.size)
        )
        stub = self.stubs.get(packet.channel)
        if stub is None:
            body = packet.payload
            kernel.post(
                dst=packet.src, size=SYSCALL_REPLY_BYTES,
                kind=MessageKind.SYSCALL_REPLY,
                payload={"token": body["token"], "ok": False,
                         "value": f"ESRCH: no stub {packet.channel}"},
            )
            return
        body = packet.payload
        stub.requests.try_put((packet.src, body["token"], body["op"], body["args"]))


class NodeSyscallService:
    """Node-side syscall forwarding (installed as ``kernel.syscalls``)."""

    def __init__(self, kernel: "NodeKernel", host_addr: int, stub_id: int) -> None:
        self.kernel = kernel
        self.host_addr = host_addr
        self.stub_id = stub_id
        self._waiting: dict[int, Any] = {}
        self._next_token = 1
        kernel.syscalls = self  # type: ignore[attr-defined]
        kernel.register_handler(MessageKind.SYSCALL_REPLY, self._on_reply)

    def call(self, sp: Subprocess, op: str, args: tuple):
        """Generator: forward one system call; blocks until the reply."""
        kernel = self.kernel
        costs = kernel.costs
        kernel.count_syscall(op)
        token = self._next_token
        self._next_token += 1
        event = kernel.sim.event()
        self._waiting[token] = event
        bulk = sum(
            len(a) for a in args if isinstance(a, (bytes, bytearray))
        )
        size = min(SYSCALL_REQUEST_BYTES + bulk, costs.hpc_max_message)
        yield kernel.k_exec(costs.syscall_overhead + costs.copy_time(size))
        kernel.post(
            dst=self.host_addr, size=size, kind=MessageKind.SYSCALL,
            channel=self.stub_id,
            payload={"token": token, "op": op, "args": args},
        )
        try:
            reply = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            self._waiting.pop(token, None)
        if not reply["ok"]:
            raise SyscallError(f"{op}{args!r} failed: {reply['value']}")
        return reply["value"]

    def _on_reply(self, packet: Packet):
        """Generator (ISR context): complete the waiting call."""
        kernel = self.kernel
        yield kernel.isr_exec(
            kernel.costs.chan_recv_kernel + kernel.costs.copy_time(packet.size)
        )
        body = packet.payload
        event = self._waiting.get(body["token"])
        if event is not None:
            event.succeed(body)


def attach_stubs(
    system: "VorxSystem",
    host_index: int,
    node_indices: list[int],
    shared: bool = False,
    fd_limit: Optional[int] = None,
) -> list[Stub]:
    """Wire node processes to host stubs.

    ``shared=True`` uses one stub for every listed node (the cheap tree
    organisation); otherwise each node gets its own stub (perfect host
    replication).  Returns the stubs created.
    """
    host = system.workstation(host_index)
    service = getattr(host, "stub_service", None)
    if service is None:
        service = StubService(host)
    stubs = []
    if shared:
        stub = service.create_stub(fd_limit)
        stubs.append(stub)
        for index in node_indices:
            NodeSyscallService(system.node(index), host.address, stub.stub_id)
    else:
        for index in node_indices:
            stub = service.create_stub(fd_limit)
            stubs.append(stub)
            NodeSyscallService(system.node(index), host.address, stub.stub_id)
    return stubs
