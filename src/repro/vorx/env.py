"""The programming interface handed to simulated application code.

A VORX program is a Python generator function taking an :class:`Env`:

.. code-block:: python

    def worker(env):
        ch = yield from env.open("results")
        yield from env.compute(500.0, label="solve")
        yield from env.write(ch, 1024, payload=answer)

Everything that consumes simulated time is a generator to be driven with
``yield from``; plain methods are free (bookkeeping only).  The API
mirrors the paper's: channels with open/read/write/multiplexed-read,
kernel semaphores, subprocess spawning, user-defined communications
objects with interrupt handlers or polling, and UNIX system calls
forwarded to the host stub (when one is attached).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.vorx.channels import ChannelEndpoint
from repro.vorx.errors import SyscallError, VorxError
from repro.vorx.objects import Handler, UserObject
from repro.vorx.subprocesses import BlockReason, KernelSemaphore, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.vorx.kernel import NodeKernel


class ChannelHandle:
    """A context-managed channel: closes itself when the ``with`` exits.

    Returned by :meth:`Env.channel`.  User programs stop hand-pairing
    ``open``/``close``:

    .. code-block:: python

        def producer(env):
            with (yield from env.channel("results")) as ch:
                yield from env.write(ch, 1024, payload="hello")
        # leaving the block -- normally or via an exception -- closes
        # the channel and notifies the peer

    The close runs as a background kernel process (a ``with`` block
    cannot ``yield from`` inside ``__exit__``), charging the same kernel
    time as an explicit :meth:`Env.close`.  Everywhere an
    :class:`~repro.vorx.channels.ChannelEndpoint` is accepted
    (``env.read``/``env.write``/``env.read_any``/``env.close``), a handle
    works too.
    """

    def __init__(self, env: "Env", endpoint: ChannelEndpoint) -> None:
        self._env = env
        #: The underlying endpoint (what the kernel services operate on).
        self.endpoint = endpoint

    # -- convenience passthroughs ------------------------------------------
    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def eid(self) -> int:
        return self.endpoint.eid

    @property
    def closed(self) -> bool:
        return self.endpoint.closed

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "ChannelHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close_soon()
        return False

    def close_soon(self) -> None:
        """Schedule the close (idempotent; safe after an explicit close)."""
        if self.endpoint.closed:
            return
        kernel = self._env.kernel
        kernel.sim.process(
            kernel.channels.close(self._env.subprocess, self.endpoint)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChannelHandle {self.endpoint!r}>"


def _endpoint_of(channel) -> ChannelEndpoint:
    """Accept either a raw endpoint or a :class:`ChannelHandle`."""
    return getattr(channel, "endpoint", channel)


class Env:
    """One subprocess's view of the kernel."""

    def __init__(self, kernel: "NodeKernel", sp: Subprocess) -> None:
        self._kernel = kernel
        self._sp = sp

    # -- identity / introspection -------------------------------------------
    @property
    def kernel(self) -> "NodeKernel":
        return self._kernel

    @property
    def subprocess(self) -> Subprocess:
        return self._sp

    @property
    def node(self) -> int:
        """This node's fabric address."""
        return self._kernel.address

    @property
    def now(self) -> float:
        """Current simulation time (us)."""
        return self._kernel.sim.now

    def log(self, tag: str, data: Any = None) -> None:
        """Record an application event in the node trace."""
        self._kernel.trace.log(self.now, tag, data)

    # -- computation -----------------------------------------------------------
    def compute(self, duration: float, label: str = "main"):
        """Generator: execute ``duration`` us of application code.

        ``label`` attributes the time for the prof tool (Section 6.2).
        """
        if duration < 0:
            raise ValueError(f"negative compute time: {duration}")
        self._kernel.prof_record(self._sp, label, duration)
        yield self._kernel.u_exec(self._sp, duration)

    def sleep(self, duration: float):
        """Generator: block for ``duration`` us (timer wait)."""
        yield from self._kernel.block(
            self._sp, BlockReason.TIMER, self._kernel.sim.timeout(duration)
        )

    # -- channels ---------------------------------------------------------------
    def open(self, name: str):
        """Generator: open channel ``name``; blocks until a peer opens it."""
        endpoint = yield from self._kernel.channels.open(self._sp, name)
        return endpoint

    def channel(self, name: str):
        """Generator: open ``name`` and return a context-managed handle.

        The handle auto-closes on scope exit (including exceptional
        exit), so programs no longer hand-pair ``open``/``close``::

            with (yield from env.channel("data")) as ch:
                yield from env.write(ch, 1024)
        """
        endpoint = yield from self.open(name)
        return ChannelHandle(self, endpoint)

    def write(self, channel, nbytes: int, payload: Any = None):
        """Generator: stop-and-wait write (blocks until acknowledged)."""
        yield from self._kernel.channels.write(
            self._sp, _endpoint_of(channel), nbytes, payload
        )

    def read(self, channel):
        """Generator: read the next message; returns ``(nbytes, payload)``."""
        result = yield from self._kernel.channels.read(
            self._sp, _endpoint_of(channel)
        )
        return result

    def read_any(self, channels: list):
        """Generator: multiplexed read; returns ``(channel, nbytes, payload)``."""
        result = yield from self._kernel.channels.read_any(
            self._sp, [_endpoint_of(channel) for channel in channels]
        )
        return result

    def close(self, channel):
        """Generator: close our end and notify the peer."""
        yield from self._kernel.channels.close(
            self._sp, _endpoint_of(channel)
        )

    # -- subprocesses and semaphores ----------------------------------------------
    def spawn(
        self,
        program: Callable[["Env"], Generator],
        name: Optional[str] = None,
        priority: int = 0,
    ) -> Subprocess:
        """Start another subprocess of this process (shared address space)."""
        return self._kernel.spawn(
            program, name=name, priority=priority,
            process_name=self._sp.process_name,
        )

    def join(self, sp: Subprocess):
        """Generator: block until another subprocess finishes."""
        if sp.process is None:
            raise VorxError(f"{sp} was never started")
        if not sp.process.is_alive:
            return sp.result
        result = yield from self._kernel.block(
            self._sp, BlockReason.OTHER, sp.process
        )
        return result

    def semaphore(self, value: int = 0, name: str = "sem") -> KernelSemaphore:
        """Create a kernel semaphore (Section 5's subprocess coordination)."""
        return KernelSemaphore(self._kernel, value, name)

    def p(self, semaphore: KernelSemaphore):
        """Generator: P (may block)."""
        yield from semaphore.p(self._sp)

    def v(self, semaphore: KernelSemaphore):
        """Generator: V (never blocks; charges the kernel operation)."""
        yield self._kernel.k_exec(self._kernel.costs.semaphore_op)
        semaphore.v()

    # -- user-defined communications objects --------------------------------------
    def create_object(
        self, name: Optional[str] = None, handler: Optional[Handler] = None
    ):
        """Generator: create a user-defined communications object.

        With ``name``, blocks until a peer creates an object of the same
        name (rendezvous through the object manager).  ``handler`` runs at
        interrupt level for each arriving message; omit it to use polling
        via :meth:`obj_poll`.
        """
        obj = yield from self._kernel.objects.create(self._sp, name, handler)
        return obj

    def obj_send(
        self,
        obj: UserObject,
        nbytes: int,
        payload: Any = None,
        dst: Optional[int] = None,
        dst_oid: Optional[int] = None,
    ):
        """Generator: direct-to-hardware send; no kernel trap, no flow control."""
        yield from self._kernel.objects.send(obj, nbytes, payload, dst, dst_oid)

    def obj_poll(self, obj: UserObject):
        """Generator: test for input (single-subprocess structure, Section 5)."""
        result = yield from self._kernel.objects.poll(obj)
        return result

    def disable_interrupts(self) -> None:
        """Switch the interface to polling mode (Section 5)."""
        self._kernel.iface.interrupts_enabled = False

    def enable_interrupts(self) -> None:
        self._kernel.iface.interrupts_enabled = True

    # -- flow-controlled multicast (Section 4.2) ------------------------------------
    def mc_join(self, name: str):
        """Generator: join multicast group ``name`` as a receiver."""
        group = yield from self._kernel.multicast.join(self._sp, name)
        return group

    def mc_open_send(self, name: str, n_receivers: int):
        """Generator: open group ``name`` for sending; blocks until
        ``n_receivers`` members have joined."""
        handle = yield from self._kernel.multicast.open_send(
            self._sp, name, n_receivers
        )
        return handle

    def mc_send(self, handle, nbytes: int, payload: Any = None):
        """Generator: flow-controlled multicast; blocks until every
        member's kernel acknowledged."""
        yield from self._kernel.multicast.send(self._sp, handle, nbytes, payload)

    def mc_read(self, group):
        """Generator: read the next multicast message; ``(nbytes, payload)``."""
        result = yield from self._kernel.multicast.read(self._sp, group)
        return result

    # -- forwarded UNIX system calls ----------------------------------------------
    def syscall(self, op: str, *args: Any):
        """Generator: execute a UNIX system call via the host stub.

        Only available to processes started through a host (see
        :mod:`repro.vorx.stub`); the call is forwarded to the stub
        process, executed in the host environment, and the result
        returned (Section 3.3).
        """
        service = getattr(self._kernel, "syscalls", None)
        if service is None:
            raise SyscallError(
                f"{self._kernel.name}: no stub attached; processes must be "
                "started through a host to use system calls"
            )
        result = yield from service.call(self._sp, op, args)
        return result
