"""Subprocesses: VORX's threads (paper Section 5).

*"Subprocesses are parts of a process that execute asynchronously with
each other.  Each subprocess is an independently scheduled thread of
execution that may block for communications or other events without
affecting the execution of the other subprocesses ...  distinct execution
priorities can be specified for each subprocess and the scheduler is
preemptive."*

A :class:`Subprocess` is the kernel-side record; the user's code is a
generator driven through :class:`repro.vorx.env.Env`.  All subprocesses of
a process share an address space (in the simulation: ordinary shared
Python state), and each costs a full 80 us context switch to dispatch
after blocking (all fixed and floating point registers).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.cpu import PRIORITY_USER

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process
    from repro.vorx.kernel import NodeKernel


class SubprocessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class BlockReason(str, enum.Enum):
    """Why a subprocess is blocked -- drives the oscilloscope's idle split."""

    INPUT = "input"
    OUTPUT = "output"
    SEMAPHORE = "semaphore"
    TIMER = "timer"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Subprocess:
    """Kernel record for one thread of a process."""

    _next_serial = 0

    def __init__(
        self,
        kernel: "NodeKernel",
        name: str,
        priority: int = 0,
        process_name: Optional[str] = None,
    ) -> None:
        if priority < 0:
            raise ValueError(f"priority must be >= 0, got {priority}")
        self.kernel = kernel
        self.name = name
        #: 0 is the highest subprocess priority (paper: distinct execution
        #: priorities, preemptive scheduler).
        self.priority = priority
        #: The process (address space) this subprocess belongs to.
        self.process_name = process_name or name
        self.state = SubprocessState.READY
        self.blocked_on: Optional[BlockReason] = None
        self.result: Any = None
        #: The sim process driving the user generator (set by the kernel).
        self.process: Optional["Process"] = None
        self.uid = f"{kernel.name}.{name}#{Subprocess._next_serial}"
        Subprocess._next_serial += 1
        #: Subprocess priority mapped onto the CPU's priority space.
        #: Precomputed: it is read on every CPU charge and block/wake
        #: cycle, and ``priority`` is fixed at creation.
        self.cpu_priority = PRIORITY_USER + priority

    @property
    def is_live(self) -> bool:
        return self.state not in (SubprocessState.DONE, SubprocessState.FAILED)

    def __repr__(self) -> str:
        return f"<Subprocess {self.uid} {self.state.value}>"


class KernelSemaphore:
    """A VORX kernel semaphore for subprocess synchronisation (Section 5).

    Unlike the engine-level :class:`repro.sim.resources.Semaphore`, P and V
    charge kernel CPU time and blocking/waking a subprocess charges the
    context switch, exactly like any other kernel blocking point.  ``V``
    may be called from interrupt handlers (it never blocks).
    """

    def __init__(self, kernel: "NodeKernel", value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0, got {value}")
        self.kernel = kernel
        self.name = name
        self.value = value
        self._waiters: list[tuple["Subprocess", Any]] = []  # (sp, event)

    def p(self, sp: "Subprocess"):
        """Generator: P (down).  Blocks the subprocess when value == 0."""
        kernel = self.kernel
        yield kernel.k_exec(kernel.costs.semaphore_op)
        if self.value > 0 and not self._waiters:
            self.value -= 1
            return
        event = kernel.sim.event()
        self._waiters.append((sp, event))
        yield from kernel.block(sp, BlockReason.SEMAPHORE, event)

    def try_p(self) -> bool:
        """Non-blocking P; no CPU charge (used inside handlers)."""
        if self.value > 0 and not self._waiters:
            self.value -= 1
            return True
        return False

    def v(self) -> None:
        """V (up).  Safe from interrupt context; wakes the oldest waiter.

        The caller is responsible for charging CPU time
        (:attr:`~repro.model.costs.CostModel.semaphore_op`) in its own
        context; this keeps V usable from ISRs without re-entering the CPU.
        """
        if self._waiters:
            _sp, event = self._waiters.pop(0)
            event.succeed()
        else:
            self.value += 1

    @property
    def waiting(self) -> int:
        return len(self._waiters)
