"""The communications object manager (paper Section 3.2).

Meglos centralized all resource management on a single host, which made
channel opens a serious bottleneck beyond ~10 processors.  VORX replicates
the *communications object manager* onto every processing node and uses
**distributed hashing** to map a channel name to the node whose manager
handles opens for that name -- two processes opening the same name always
hash to the same manager, so it can pair them.

This module implements both organisations behind one interface:

* ``distributed`` -- managers on every node, names hashed over them
  (VORX; the default).
* ``centralized`` -- a single manager address handles every open
  (Meglos-style; used by experiment E9 to reproduce the bottleneck).

User-defined communications objects rendezvous through the same mechanism
(Section 4.1: "integrated with the object manager").

Pairing is FIFO per name, which also provides the paper's server
name-reuse semantics: a server re-opening the same name repeatedly pairs
with successive clients.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import TYPE_CHECKING

from repro.hpc.message import MessageKind, Packet
from repro.vorx.subprocesses import BlockReason, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.vorx.kernel import NodeKernel

#: Wire size of manager requests and replies.
MANAGER_MESSAGE_BYTES = 48


def name_hash(name: str) -> int:
    """Deterministic hash used for distributed name placement."""
    return zlib.crc32(name.encode("utf-8"))


class ObjectManagerService:
    """Per-kernel object manager: both the server piece and the client side."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        #: Manager addresses names are hashed over.  Set by the system
        #: builder; a single-element list gives the centralized (Meglos)
        #: organisation.
        self.manager_addresses: list[int] = [kernel.address]
        #: Server side: (kind, name) -> FIFO of waiting opens.
        self._pending: dict[tuple[str, str], deque[tuple[int, int, int]]] = {}
        #: Client side: token -> event for replies in flight.
        self._waiting: dict[int, "Event"] = {}
        self._next_token = 1
        #: Opens handled by this node's manager piece (statistics for E9).
        self.opens_handled = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def node_for(self, name: str) -> int:
        """The manager address responsible for ``name``."""
        if not self.manager_addresses:
            raise RuntimeError("object manager has no configured addresses")
        return self.manager_addresses[name_hash(name) % len(self.manager_addresses)]

    # ------------------------------------------------------------------
    # client side (subprocess context)
    # ------------------------------------------------------------------
    def request_open(self, sp: Subprocess, name: str, eid: int, kind: str):
        """Generator: ask the responsible manager to pair this open.

        Blocks the subprocess until a peer opens the same name.  Returns
        ``(peer_address, peer_id)``.
        """
        kernel = self.kernel
        token = self._next_token
        self._next_token += 1
        event = kernel.sim.event()
        self._waiting[token] = event
        manager = self.node_for(name)
        request = {
            "op": "open",
            "kind": kind,
            "name": name,
            "addr": kernel.address,
            "id": eid,
            "token": token,
        }
        if manager == kernel.address:
            # Local shortcut: no wire traversal, but the manager's
            # processing cost is still paid.
            yield kernel.k_exec(kernel.costs.chan_open_kernel)
            self._handle_open(request)
        else:
            kernel.post(
                dst=manager,
                size=MANAGER_MESSAGE_BYTES,
                kind=MessageKind.MANAGER,
                payload=request,
            )
        try:
            reply = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            self._waiting.pop(token, None)
        return reply

    # ------------------------------------------------------------------
    # server side (ISR context)
    # ------------------------------------------------------------------
    def on_manager(self, packet: Packet):
        """Generator (ISR context): manager protocol traffic."""
        kernel = self.kernel
        request = packet.payload
        op = request["op"]
        if op == "open":
            yield kernel.isr_exec(kernel.costs.chan_open_kernel)
            self._handle_open(request)
        elif op == "open-reply":
            yield kernel.isr_exec(kernel.costs.chan_ack_recv)
            event = self._waiting.get(request["token"])
            if event is not None:
                event.succeed((request["peer_addr"], request["peer_id"]))
        else:  # pragma: no cover - future ops
            raise ValueError(f"unknown manager op {op!r}")

    def _handle_open(self, request: dict) -> None:
        """Pair FIFO opens of the same (kind, name)."""
        self.opens_handled += 1
        key = (request["kind"], request["name"])
        queue = self._pending.setdefault(key, deque())
        if queue:
            partner_addr, partner_id, partner_token = queue.popleft()
            self._deliver_reply(
                partner_addr, partner_token, request["addr"], request["id"]
            )
            self._deliver_reply(
                request["addr"], request["token"], partner_addr, partner_id
            )
        else:
            queue.append((request["addr"], request["id"], request["token"]))

    def _deliver_reply(
        self, addr: int, token: int, peer_addr: int, peer_id: int
    ) -> None:
        kernel = self.kernel
        if addr == kernel.address:
            event = self._waiting.get(token)
            if event is not None:
                event.succeed((peer_addr, peer_id))
            return
        kernel.post(
            dst=addr,
            size=MANAGER_MESSAGE_BYTES,
            kind=MessageKind.MANAGER,
            payload={
                "op": "open-reply",
                "token": token,
                "peer_addr": peer_addr,
                "peer_id": peer_id,
            },
        )

    # ------------------------------------------------------------------
    @property
    def pending_opens(self) -> int:
        """Unpaired opens waiting at this manager (for tools/tests)."""
        return sum(len(q) for q in self._pending.values())
