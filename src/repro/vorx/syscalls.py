"""Decentralized system calls (paper Section 3.3, future work).

*"We are working on a better solution to these problems that will
alleviate the bottleneck of using a single host for all the system calls
of an application.  It uses a decentralized scheme that distributes the
overhead of system calls by allowing a process to direct system calls to
any of the host workstations."*

This module implements that scheme: a :class:`DecentralizedSyscallService`
binds a node to stubs on *several* hosts and spreads calls across them.
The hosts share one network filesystem (the same
:class:`~repro.hostos.filesystem.FileSystem` instance), so file state is
consistent wherever a call lands.  File-descriptor affinity is preserved:
an ``open`` picks a host (least outstanding calls, FIFO tie-break) and
subsequent operations on that descriptor return to the same host, because
the descriptor state lives in that stub's process.

Experiment E18 (an extension benchmark) measures aggregate syscall
throughput versus host count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.hostos.filesystem import FileSystem
from repro.hpc.message import MessageKind, Packet
from repro.vorx.errors import SyscallError
from repro.vorx.stub import SYSCALL_REQUEST_BYTES, Stub, StubService
from repro.vorx.subprocesses import BlockReason, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.vorx.kernel import NodeKernel
    from repro.vorx.system import VorxSystem


class HostBinding:
    """One node's binding to a stub on one host."""

    def __init__(self, host_addr: int, stub: Stub) -> None:
        self.host_addr = host_addr
        self.stub = stub
        #: Calls sent to this host and not yet answered.
        self.outstanding = 0
        self.calls_sent = 0


class DecentralizedSyscallService:
    """Node-side service spreading system calls over several hosts."""

    def __init__(self, kernel: "NodeKernel",
                 bindings: list[HostBinding]) -> None:
        if not bindings:
            raise ValueError("need at least one host binding")
        self.kernel = kernel
        self.bindings = bindings
        self._waiting: dict[int, Any] = {}
        self._next_token = 1
        #: fd -> binding that owns the descriptor's state.
        self._fd_home: dict[int, HostBinding] = {}
        # Rotating tie-break so concurrent nodes spread over the hosts
        # instead of all picking the lowest address; seeded by the node
        # address for determinism.
        self._rotation = kernel.address % len(bindings)
        kernel.syscalls = self  # type: ignore[attr-defined]
        kernel.register_handler(MessageKind.SYSCALL_REPLY, self._on_reply)

    # ------------------------------------------------------------------
    def _choose(self, op: str, args: tuple) -> HostBinding:
        """Pick the host for this call.

        Descriptor-bound operations must return to the descriptor's home;
        everything else goes to the host with the fewest outstanding
        calls (FIFO tie-break keeps the simulation deterministic).
        """
        if op in ("close", "read", "write", "seek") and args:
            fd = args[0]
            home = self._fd_home.get(fd)
            if home is not None:
                return home
        n = len(self.bindings)
        self._rotation = (self._rotation + 1) % n
        return min(
            (self.bindings[(self._rotation + i) % n] for i in range(n)),
            key=lambda b: b.outstanding,
        )

    def call(self, sp: Subprocess, op: str, args: tuple):
        """Generator: forward one system call to a chosen host."""
        kernel = self.kernel
        costs = kernel.costs
        kernel.count_syscall(op)
        binding = self._choose(op, args)
        kernel.metrics.counter(
            "syscall.host_calls", labels=(str(binding.host_addr),)
        ).inc()
        token = self._next_token
        self._next_token += 1
        event = kernel.sim.event()
        self._waiting[token] = event
        bulk = sum(len(a) for a in args if isinstance(a, (bytes, bytearray)))
        size = min(SYSCALL_REQUEST_BYTES + bulk, costs.hpc_max_message)
        yield kernel.k_exec(costs.syscall_overhead + costs.copy_time(size))
        binding.outstanding += 1
        binding.calls_sent += 1
        kernel.post(
            dst=binding.host_addr, size=size, kind=MessageKind.SYSCALL,
            channel=binding.stub.stub_id,
            payload={"token": token, "op": op, "args": args},
        )
        try:
            reply = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            binding.outstanding -= 1
            self._waiting.pop(token, None)
        if not reply["ok"]:
            raise SyscallError(f"{op}{args!r} failed: {reply['value']}")
        if op == "open":
            self._fd_home[reply["value"]] = binding
        elif op == "close" and args:
            self._fd_home.pop(args[0], None)
        return reply["value"]

    def _on_reply(self, packet: Packet):
        kernel = self.kernel
        yield kernel.isr_exec(
            kernel.costs.chan_recv_kernel + kernel.costs.copy_time(packet.size)
        )
        body = packet.payload
        event = self._waiting.get(body["token"])
        if event is not None:
            event.succeed(body)

    # ------------------------------------------------------------------
    def distribution(self) -> dict[int, int]:
        """host address -> calls sent (for the E18 report)."""
        return {b.host_addr: b.calls_sent for b in self.bindings}


def attach_decentralized_stubs(
    system: "VorxSystem",
    host_indices: list[int],
    node_indices: list[int],
    filesystem: Optional[FileSystem] = None,
) -> dict[int, DecentralizedSyscallService]:
    """Bind every listed node to a stub on *every* listed host.

    All hosts serve the same (network) filesystem.  Returns the per-node
    services keyed by node index.
    """
    if not host_indices:
        raise ValueError("need at least one host")
    shared_fs = filesystem or FileSystem()
    stub_services: list[StubService] = []
    for host_index in host_indices:
        host = system.workstation(host_index)
        service = getattr(host, "stub_service", None)
        if service is None:
            service = StubService(host, filesystem=shared_fs)
        stub_services.append(service)
    result: dict[int, DecentralizedSyscallService] = {}
    for node_index in node_indices:
        bindings = []
        for host_index, service in zip(host_indices, stub_services):
            stub = service.create_stub()
            bindings.append(
                HostBinding(system.workstation(host_index).address, stub)
            )
        result[node_index] = DecentralizedSyscallService(
            system.node(node_index), bindings
        )
    return result
