"""Flow-controlled multicast (paper Section 4.2).

*"We therefore designed the HPC hardware to be able to implement
multicast efficiently and devised a flow-controlled multicast primitive
that is integrated with channels."* -- and then the paper explains why
multicast is usually the wrong tool: every receiver pays to read data it
does not need, so as the processor count grows, a per-receiver
point-to-point message with just the needed data wins (the 2DFFT example,
experiment E6).

Model notes: receivers *join* a named group; a sender *opens* the group
for a known receiver count (rendezvous through the same hashed manager
placement as channels).  A multicast send charges the sender's CPU for
**one** message (the HPC hardware replicates it); the fabric carries one
copy per member.  Flow control: the sender blocks until every member's
kernel has acknowledged -- the multicast analogue of stop-and-wait.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.hpc.message import MessageKind, Packet
from repro.vorx.errors import ChannelStateError
from repro.vorx.object_manager import MANAGER_MESSAGE_BYTES, name_hash
from repro.vorx.subprocesses import BlockReason, Subprocess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.vorx.kernel import NodeKernel


class MulticastGroup:
    """Receiver-side handle for a joined group."""

    def __init__(self, gid: int, name: str, sp: Subprocess) -> None:
        self.gid = gid
        self.name = name
        self.sp = sp
        self.buffers: deque[tuple[int, Any]] = deque()
        self.reader_event: Optional["Event"] = None
        self.messages_received = 0
        #: Total payload bytes this member has had to read (the Section
        #: 4.2 cost that makes multicast inappropriate at scale).
        self.bytes_read = 0

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.name!r} gid={self.gid}>"


class MulticastSendHandle:
    """Sender-side handle: the resolved member list."""

    def __init__(self, name: str, members: list[tuple[int, int]]) -> None:
        self.name = name
        #: (address, gid) of every member.
        self.members = members
        self.messages_sent = 0

    def __repr__(self) -> str:
        return f"<MulticastSendHandle {self.name!r} n={len(self.members)}>"


class MulticastService:
    """Per-kernel multicast implementation (data + group management)."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        self.groups: dict[int, MulticastGroup] = {}
        self._next_gid = 1
        # Manager-side state (only used on the node that names hash to).
        self._members: dict[str, list[tuple[int, int]]] = {}
        self._waiting_senders: dict[str, list[tuple[int, int, int]]] = {}
        # Client-side pending requests: token -> event.
        self._waiting: dict[int, "Event"] = {}
        self._next_token = 1
        # Sender-side in-flight acks: token -> [remaining, event].
        self._pending_acks: dict[int, list] = {}

    # ------------------------------------------------------------------
    # subprocess-context API
    # ------------------------------------------------------------------
    def join(self, sp: Subprocess, name: str):
        """Generator: join group ``name`` as a receiver."""
        kernel = self.kernel
        group = MulticastGroup(self._next_gid, name, sp)
        self._next_gid += 1
        self.groups[group.gid] = group
        yield kernel.k_exec(kernel.costs.syscall_overhead)
        yield from self._request(
            sp, name, {"op": "mc-join", "gid": group.gid}
        )
        return group

    def open_send(self, sp: Subprocess, name: str, n_receivers: int):
        """Generator: open ``name`` for sending; blocks until the group
        has ``n_receivers`` members.  Returns the send handle."""
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver, got {n_receivers}")
        kernel = self.kernel
        yield kernel.k_exec(kernel.costs.syscall_overhead)
        members = yield from self._request(
            sp, name, {"op": "mc-open", "expected": n_receivers}
        )
        return MulticastSendHandle(name, [tuple(m) for m in members])

    def send(self, sp: Subprocess, handle: MulticastSendHandle,
             nbytes: int, payload: Any = None):
        """Generator: flow-controlled multicast of one message.

        The sender's CPU is charged for a single kernel send (hardware
        replication); the call blocks until every member acknowledged.
        """
        kernel = self.kernel
        costs = kernel.costs
        if not handle.members:
            raise ChannelStateError(f"multicast group {handle.name!r} is empty")
        if nbytes > costs.hpc_max_message:
            raise ValueError(
                f"multicast of {nbytes} bytes exceeds the hardware maximum; "
                "fragment in the application"
            )
        yield kernel.k_exec(costs.syscall_overhead)
        yield kernel.k_exec(costs.chan_send_kernel + costs.copy_time(nbytes))
        token = self._next_token
        self._next_token += 1
        event = kernel.sim.event()
        self._pending_acks[token] = [len(handle.members), event]
        for addr, gid in handle.members:
            kernel.post(
                dst=addr, size=nbytes, kind=MessageKind.MULTICAST,
                channel=gid,
                payload={"op": "mc-data", "token": token,
                         "src_gid": 0, "data": payload},
            )
        try:
            yield from kernel.block(sp, BlockReason.OUTPUT, event)
        finally:
            self._pending_acks.pop(token, None)
        handle.messages_sent += 1

    def read(self, sp: Subprocess, group: MulticastGroup):
        """Generator: read the next multicast message; ``(nbytes, payload)``."""
        kernel = self.kernel
        costs = kernel.costs
        yield kernel.k_exec(costs.syscall_overhead)
        if group.buffers:
            size, payload = group.buffers.popleft()
            yield kernel.k_exec(costs.copy_time(size))
            return size, payload
        if group.reader_event is not None:
            raise ChannelStateError(
                f"group {group.name!r} already has a read outstanding"
            )
        event = kernel.sim.event()
        group.reader_event = event
        try:
            size, payload = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            group.reader_event = None
        return size, payload

    # ------------------------------------------------------------------
    # ISR-context handlers
    # ------------------------------------------------------------------
    def on_message(self, packet: Packet):
        """Generator (ISR context): demux multicast data/control."""
        kernel = self.kernel
        costs = kernel.costs
        body = packet.payload
        op = body["op"]
        if op == "mc-data":
            group = self.groups.get(packet.channel)
            yield kernel.isr_exec(
                costs.chan_recv_kernel + costs.copy_time(packet.size)
            )
            if group is not None:
                group.messages_received += 1
                group.bytes_read += packet.size
                if group.reader_event is not None:
                    event = group.reader_event
                    group.reader_event = None
                    event.succeed((packet.size, body["data"]))
                else:
                    group.buffers.append((packet.size, body["data"]))
            # Flow control: acknowledge regardless so the sender's window
            # semantics do not depend on stragglers' group state.
            yield kernel.isr_exec(costs.chan_ack_send)
            kernel.post(
                dst=packet.src, size=costs.chan_ack_bytes,
                kind=MessageKind.MULTICAST,
                payload={"op": "mc-ack", "token": body["token"]},
            )
        elif op == "mc-ack":
            yield kernel.isr_exec(costs.chan_ack_recv)
            pending = self._pending_acks.get(body["token"])
            if pending is not None:
                pending[0] -= 1
                if pending[0] == 0:
                    pending[1].succeed()
        elif op in ("mc-join", "mc-open"):
            yield kernel.isr_exec(costs.chan_open_kernel)
            self._handle_manager(packet.src, body)
        elif op == "mc-reply":
            yield kernel.isr_exec(costs.chan_ack_recv)
            event = self._waiting.get(body["token"])
            if event is not None:
                event.succeed(body["result"])
        else:  # pragma: no cover - future ops
            raise ValueError(f"unknown multicast op {op!r}")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _manager_for(self, name: str) -> int:
        addresses = self.kernel.manager.manager_addresses
        return addresses[name_hash(name) % len(addresses)]

    def _request(self, sp: Subprocess, name: str, body: dict):
        """Generator: send a management request, block for the reply."""
        kernel = self.kernel
        token = self._next_token
        self._next_token += 1
        event = kernel.sim.event()
        self._waiting[token] = event
        body = dict(body, name=name, token=token, addr=kernel.address)
        manager = self._manager_for(name)
        if manager == kernel.address:
            yield kernel.k_exec(kernel.costs.chan_open_kernel)
            self._handle_manager(kernel.address, body)
        else:
            kernel.post(
                dst=manager, size=MANAGER_MESSAGE_BYTES,
                kind=MessageKind.MULTICAST, payload=body,
            )
        try:
            result = yield from kernel.block(sp, BlockReason.INPUT, event)
        finally:
            self._waiting.pop(token, None)
        return result

    def _handle_manager(self, src: int, body: dict) -> None:
        name = body["name"]
        if body["op"] == "mc-join":
            members = self._members.setdefault(name, [])
            members.append((body["addr"], body["gid"]))
            self._reply(body["addr"], body["token"], "joined")
            self._check_waiting_senders(name)
        else:  # mc-open
            waiting = self._waiting_senders.setdefault(name, [])
            waiting.append((body["addr"], body["token"], body["expected"]))
            self._check_waiting_senders(name)

    def _check_waiting_senders(self, name: str) -> None:
        members = self._members.get(name, [])
        waiting = self._waiting_senders.get(name, [])
        still_waiting = []
        for addr, token, expected in waiting:
            if len(members) >= expected:
                self._reply(addr, token, list(members[:expected]))
            else:
                still_waiting.append((addr, token, expected))
        self._waiting_senders[name] = still_waiting

    def _reply(self, addr: int, token: int, result: Any) -> None:
        kernel = self.kernel
        if addr == kernel.address:
            event = self._waiting.get(token)
            if event is not None:
                event.succeed(result)
            return
        kernel.post(
            dst=addr, size=MANAGER_MESSAGE_BYTES, kind=MessageKind.MULTICAST,
            payload={"op": "mc-reply", "token": token, "result": result},
        )
