"""The VORX distributed operating system (the paper's core contribution).

Subpackages of the kernel:

* :mod:`repro.vorx.kernel` -- per-node kernel: ISR path, dispatch,
  subprocess scheduling.
* :mod:`repro.vorx.channels` -- named channels with the stop-and-wait
  protocol (Section 4).
* :mod:`repro.vorx.objects` -- user-defined communications objects
  (Section 4.1).
* :mod:`repro.vorx.sliding_window` -- the Table 1 reader-active
  sliding-window benchmark protocol.
* :mod:`repro.vorx.multicast` -- the flow-controlled multicast primitive
  (Section 4.2).
* :mod:`repro.vorx.object_manager` -- distributed-hashing name rendezvous
  (Section 3.2).
* :mod:`repro.vorx.resource_manager` -- processor allocation policies
  (Section 3.1).
* :mod:`repro.vorx.stub` / :mod:`repro.vorx.download` -- host stubs,
  syscall forwarding, and program download (Section 3.3).
* :mod:`repro.vorx.system` -- the :class:`VorxSystem` machine builder.
"""

from repro.vorx.env import ChannelHandle, Env
from repro.vorx.errors import (
    AllocationError,
    ChannelBusyError,
    ChannelClosedError,
    ChannelError,
    ChannelStateError,
    DownloadError,
    ObjectError,
    SyscallError,
    VorxError,
)
from repro.vorx.kernel import NodeKernel
from repro.vorx.subprocesses import (
    BlockReason,
    KernelSemaphore,
    Subprocess,
    SubprocessState,
)
from repro.vorx.system import VorxSystem

__all__ = [
    "Env",
    "ChannelHandle",
    "NodeKernel",
    "VorxSystem",
    "Subprocess",
    "SubprocessState",
    "BlockReason",
    "KernelSemaphore",
    "VorxError",
    "ChannelError",
    "ChannelClosedError",
    "ChannelBusyError",
    "ChannelStateError",
    "ObjectError",
    "AllocationError",
    "DownloadError",
    "SyscallError",
]
