"""Exception types raised by the VORX kernel to application code."""

from __future__ import annotations


class VorxError(Exception):
    """Base class for all VORX kernel errors."""


class ChannelError(VorxError):
    """Base class for channel errors."""


class ChannelClosedError(ChannelError):
    """The peer closed the channel while an operation was in progress."""


class ChannelBusyError(ChannelError):
    """A second writer/reader entered a single-outstanding-operation path."""


class ChannelStateError(ChannelError):
    """Operation on a channel in the wrong state (e.g. write before open)."""


class ObjectError(VorxError):
    """Errors from the user-defined communications object layer."""


class AllocationError(VorxError):
    """Processor allocation failed (e.g. "processors not available")."""


class DownloadError(VorxError):
    """Program download failed."""


class SyscallError(VorxError):
    """A forwarded UNIX system call failed on the host."""
