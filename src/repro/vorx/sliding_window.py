"""The reader-active sliding-window benchmark protocol (Section 4.1, Table 1).

Paper: *"we benchmarked a sliding-window user-defined protocol that
allowed messages of some fixed length to be sent between two processors.
Both the sender and receiver know the length of the messages.  The
receiver initially sends k buffer-available messages to the sender, where
k is the maximum number of messages that fit in its available buffer
space, and thereafter sends one buffer-available message each time a
message is received.  The sender keeps its own count of the number of
receiver buffers available ...  if the count is greater than zero, the
sender can send a message immediately, otherwise it blocks until the
count becomes greater than zero.  For our benchmark, the sender
transmitted 1000 messages and the resulting communication latency is
computed by dividing the elapsed time by 1000."*

This module implements exactly that protocol on VORX user-defined
communications objects (no supervisor calls; application-level interrupt
handlers) and provides :func:`run_sliding_window` which reproduces one
cell of Table 1, plus :func:`run_channel_stream` for the matching Table 2
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.costs import CostModel, DEFAULT_COSTS
from repro.vorx.system import VorxSystem


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a 1000-message stream benchmark."""

    n_messages: int
    message_bytes: int
    n_buffers: Optional[int]  # None for the channel (stop-and-wait) runs
    elapsed_us: float
    #: The run's metrics/trace hub (``Vstat``), for post-hoc inspection.
    vstat: Optional[object] = None
    #: The run's simulator, for engine-level statistics (``scripts/perf.py``
    #: reads ``sim.processed`` to report events/sec).
    sim: Optional[object] = None

    @property
    def us_per_message(self) -> float:
        """The paper's metric: elapsed time divided by message count."""
        return self.elapsed_us / self.n_messages

    @property
    def kbytes_per_sec(self) -> float:
        """Throughput in kbyte/s (Section 4's bandwidth metric)."""
        total = self.n_messages * self.message_bytes
        return total / (self.elapsed_us / 1e6) / 1024.0


def run_sliding_window(
    n_buffers: int,
    message_bytes: int,
    n_messages: int = 1000,
    costs: CostModel = DEFAULT_COSTS,
    credit_batch: int = 1,
) -> StreamResult:
    """Reproduce one Table 1 cell.

    Two nodes on one cluster; the receiver grants ``n_buffers`` initial
    credits and one credit per message consumed; the sender transmits
    ``n_messages`` fixed-length messages; result is elapsed/n.

    ``credit_batch`` is the Section 4.1 tuning knob: "To obtain improved
    performance, the number of update messages should be kept small, but
    should be sent often enough to maintain concurrency between the
    sender and the receiver."  With ``credit_batch=b`` the receiver sends
    one buffer-available message per ``b`` messages consumed, each worth
    ``b`` credits (``b`` must divide into the window; 1 reproduces
    Table 1's protocol exactly).
    """
    if n_buffers < 1:
        raise ValueError(f"need at least one buffer, got {n_buffers}")
    if credit_batch < 1 or credit_batch > n_buffers:
        raise ValueError(
            f"credit_batch must be in 1..{n_buffers}, got {credit_batch}"
        )
    system = VorxSystem(n_nodes=2, costs=costs)
    done: dict[str, float] = {}

    def sender(env):
        credits = env.semaphore(0, name="credits")

        def on_credit(packet):
            # ISR context: account the credit(s) and wake the sender.
            yield env.kernel.isr_exec(costs.sw_credit_recv)
            for _ in range(packet.payload or 1):
                credits.v()

        obj = yield from env.create_object("sw-bench", handler=on_credit)
        # Wait for the receiver's initial credit burst before timing.
        yield from env.p(credits)
        credits.v()
        start = env.now
        stalls = env.kernel.metrics.counter("sw.credit_stalls")
        stall_time = env.kernel.metrics.counter("sw.credit_stall_us")
        for _ in range(n_messages):
            # The Table 1 stall: window exhausted, sender blocks until a
            # buffer-available message restores credit.
            if credits.value == 0:
                stalls.inc()
                stalled_from = env.now
                yield from env.p(credits)
                stall_time.inc(env.now - stalled_from)
            else:
                yield from env.p(credits)
            # Per-message user-level bookkeeping: window count, buffer
            # management, loop control.
            yield from env.compute(costs.sw_send_user, label="sw-send")
            yield from env.obj_send(obj, message_bytes)
        done["send_elapsed"] = env.now - start

    def receiver(env):
        available = env.semaphore(0, name="arrivals")
        arrivals: list = []

        def on_data(packet):
            # ISR context: note the arrival; consumption happens in the
            # main loop (this is the "simple protocol" of the paper, not
            # the hand-optimised kernel channel path).
            arrivals.append(packet)
            yield env.kernel.isr_exec(costs.semaphore_op)
            available.v()

        obj = yield from env.create_object("sw-bench", handler=on_data)
        # Initial window: k buffer-available messages (batched credits
        # grant the same total window in fewer messages).
        granted = 0
        while granted < n_buffers:
            grant = min(credit_batch, n_buffers - granted)
            yield from env.compute(costs.sw_credit_send, label="sw-credit")
            yield from env.obj_send(obj, costs.sw_credit_bytes, payload=grant)
            granted += grant
        pending_credits = 0
        consumed = 0
        while consumed < n_messages:
            # Block until something arrives, then drain everything
            # available before turning to credit generation -- the
            # natural "process all input, then update the window" loop
            # structure.  One buffer-available message is still sent per
            # message received, but they go out as a clump, which is what
            # sustains the per-window sender stall visible in Table 1.
            yield from env.p(available)
            batch = 1
            arrivals.pop(0)
            yield from env.compute(
                costs.sw_consume_user
                + costs.sw_consume_per_byte * message_bytes,
                label="sw-consume",
            )
            while available.try_p():
                arrivals.pop(0)
                yield from env.compute(
                    costs.sw_consume_user
                    + costs.sw_consume_per_byte * message_bytes,
                    label="sw-consume",
                )
                batch += 1
            consumed += batch
            pending_credits += batch
            # One buffer-available message per `credit_batch` consumed
            # (the remainder is flushed at the end of the stream).
            while pending_credits >= credit_batch or (
                consumed >= n_messages and pending_credits > 0
            ):
                grant = min(credit_batch, pending_credits)
                pending_credits -= grant
                yield from env.compute(costs.sw_credit_send,
                                       label="sw-credit")
                yield from env.obj_send(obj, costs.sw_credit_bytes,
                                        payload=grant)

    tx = system.spawn(0, sender, name="sw-sender")
    rx = system.spawn(1, receiver, name="sw-receiver")
    system.run_until_complete([tx, rx])
    return StreamResult(
        n_messages=n_messages,
        message_bytes=message_bytes,
        n_buffers=n_buffers,
        elapsed_us=done["send_elapsed"],
        vstat=system.sim.vstat,
        sim=system.sim,
    )


def run_large_write(
    total_bytes: int = 1_048_576,
    chunk_bytes: int = 65_536,
    costs: CostModel = DEFAULT_COSTS,
    reader_delay_us: float = 0.0,
    faults=None,
) -> StreamResult:
    """Stream ``total_bytes`` down one channel in large fragmented writes.

    The Section 4 bandwidth scenario: each ``chunk_bytes`` write
    fragments into many hardware messages, so this is the workload the
    batched write path (``costs.chan_batch_window > 1``: one syscall,
    up to ``k`` fragments in flight) exists for.  With the default
    stop-and-wait costs it measures the same per-fragment overhead as
    the Table 2 stream; with :meth:`~repro.model.costs.CostModel.batched`
    costs it measures the amortized large-write path.

    ``elapsed_us`` runs from the first write entering the kernel to the
    last fragment acknowledged; :attr:`StreamResult.kbytes_per_sec` is
    then directly comparable with the Table 1 bandwidth column.

    ``reader_delay_us`` makes the receiver compute for that long after
    every fragment it reads -- the slow-reader case the adaptive window
    exists for (deferred acks pace the writer to the reader, so the
    reader's compute time is on the flow-control path).  ``faults``
    attaches a :class:`~repro.faults.plan.FaultPlan` so bulk writes can
    be measured under seeded loss.
    """
    if total_bytes < 1 or chunk_bytes < 1:
        raise ValueError("total_bytes and chunk_bytes must be positive")
    n_chunks, remainder = divmod(total_bytes, chunk_bytes)
    if remainder:
        raise ValueError(
            f"chunk_bytes ({chunk_bytes}) must divide total_bytes "
            f"({total_bytes})"
        )
    frags_per_chunk = -(-chunk_bytes // costs.hpc_max_message)
    system = VorxSystem(n_nodes=2, costs=costs, faults=faults)
    done: dict[str, float] = {}

    def sender(env):
        ch = yield from env.open("bulk-bench")
        # Handshake so timing starts with both sides ready.
        yield from env.read(ch)
        start = env.now
        for i in range(n_chunks):
            yield from env.write(ch, chunk_bytes, payload=i)
        done["send_elapsed"] = env.now - start

    def receiver(env):
        ch = yield from env.open("bulk-bench")
        yield from env.write(ch, 4)
        for _ in range(n_chunks * frags_per_chunk):
            yield from env.read(ch)
            if reader_delay_us > 0.0:
                yield from env.compute(reader_delay_us)

    tx = system.spawn(0, sender, name="bulk-sender")
    rx = system.spawn(1, receiver, name="bulk-receiver")
    system.run_until_complete([tx, rx])
    return StreamResult(
        n_messages=n_chunks,
        message_bytes=chunk_bytes,
        n_buffers=None,
        elapsed_us=done["send_elapsed"],
        vstat=system.sim.vstat,
        sim=system.sim,
    )


def run_channel_stream(
    message_bytes: int,
    n_messages: int = 1000,
    costs: CostModel = DEFAULT_COSTS,
) -> StreamResult:
    """Reproduce one Table 2 cell: a channel (stop-and-wait) stream."""
    system = VorxSystem(n_nodes=2, costs=costs)
    done: dict[str, float] = {}

    def sender(env):
        ch = yield from env.open("chan-bench")
        # Handshake so timing starts with both sides ready.
        yield from env.read(ch)
        start = env.now
        for _ in range(n_messages):
            yield from env.write(ch, message_bytes)
        done["send_elapsed"] = env.now - start

    def receiver(env):
        ch = yield from env.open("chan-bench")
        yield from env.write(ch, 4)
        for _ in range(n_messages):
            yield from env.read(ch)

    tx = system.spawn(0, sender, name="chan-sender")
    rx = system.spawn(1, receiver, name="chan-receiver")
    system.run_until_complete([tx, rx])
    return StreamResult(
        n_messages=n_messages,
        message_bytes=message_bytes,
        n_buffers=None,
        elapsed_us=done["send_elapsed"],
        vstat=system.sim.vstat,
        sim=system.sim,
    )
