"""The per-node VORX kernel.

Each processing node (and each host workstation) runs one
:class:`NodeKernel`: the preemptive subprocess scheduler, the interrupt
service path that drains the HPC interface, and the demultiplexer feeding
the channel service, the object manager, user-defined objects, and any
registered extension services (stubs, downloads, multicast).

CPU charging discipline
-----------------------

All simulated software charges time on the node's single
:class:`~repro.sim.cpu.CPU`:

* ``isr_exec`` -- interrupt level, highest priority, non-preemptible;
* ``k_exec``  -- kernel paths (syscall bodies), preempts user code;
* ``u_exec``  -- subprocess user code at ``10 + subprocess priority``.

Blocking points go through :meth:`NodeKernel.block`, which records why
the subprocess blocked (driving the software oscilloscope's idle
categories) and charges the documented 80 us context switch when the
subprocess is dispatched again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional

from repro.hpc.message import MessageKind, Packet
from repro.sim.cpu import CPU, PRIORITY_ISR, PRIORITY_KERNEL
from repro.sim.trace import Category, TraceLog
from repro.vorx.channels import ChannelService
from repro.vorx.multicast import MulticastService
from repro.vorx.object_manager import ObjectManagerService
from repro.vorx.objects import UserObjectService
from repro.vorx.subprocesses import BlockReason, Subprocess, SubprocessState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.model.costs import CostModel
    from repro.hpc.nic import HPCInterface


class NodeKernel:
    """The VORX kernel instance on one node."""

    def __init__(
        self,
        sim: "Simulator",
        costs: "CostModel",
        iface: "HPCInterface",
        name: Optional[str] = None,
        is_host: bool = False,
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.iface = iface
        self.address = iface.address
        self.name = name or f"vorx{self.address}"
        #: True for host workstations (they additionally run host services).
        self.is_host = is_host
        self.cpu = CPU(sim, self.name)
        #: This node's vstat metrics registry (shared with its CPU).
        self.metrics = sim.vstat.registry(self.name)
        self.trace = TraceLog(stream=sim.vstat.events, node=self.name)
        self._m_context_switches = self.metrics.counter(
            "kernel.context_switches"
        )
        self._m_packets_posted = self.metrics.counter("kernel.packets_posted")
        self._m_bytes_posted = self.metrics.counter("kernel.bytes_posted")
        self._m_syscalls = self.metrics.counter("kernel.syscalls")
        self._m_interrupts = self.metrics.counter("kernel.interrupts")
        #: Hot-path caches around the generic (name, labels) registry
        #: lookup: per-op syscall counters and per-reason block counters.
        self._m_syscalls_by_op: Dict[str, Any] = {}
        self._m_blocks_by_reason: Dict[BlockReason, Any] = {}
        self.channels = ChannelService(self)
        self.objects = UserObjectService(self)
        self.manager = ObjectManagerService(self)
        self.multicast = MulticastService(self)
        self.subprocesses: list[Subprocess] = []
        #: Extension services: message kind -> generator handler(packet).
        self._kind_handlers: Dict[MessageKind, Callable[[Packet], Generator]] = {}
        self._isr_active = False
        #: Last idle category pushed to the timeline; this kernel is the
        #: only writer, so an equality check here skips the
        #: ``set_idle_reason`` call chain on no-change updates.
        self._last_idle_category: Optional[Category] = None
        iface.set_rx_interrupt(self._rx_interrupt)

    # ------------------------------------------------------------------
    # vstat instrumentation
    # ------------------------------------------------------------------
    @property
    def context_switches(self) -> int:
        """Context switches charged so far (backed by the vstat counter)."""
        return int(self._m_context_switches.value)

    @property
    def packets_posted(self) -> int:
        """Messages handed to the interface (backed by the vstat counter)."""
        return int(self._m_packets_posted.value)

    @property
    def prof_samples(self) -> Dict[tuple[str, str], float]:
        """Per-(process, label) user CPU time, read from the registry."""
        return {
            labels: counter.value  # type: ignore[attr-defined, misc]
            for labels, counter in self.metrics.labelled("prof.user_us").items()
        }

    def emit(self, subsystem: str, name: str, **fields) -> None:
        """Record a structured trace event for this node, timestamped now."""
        stream = self.sim.vstat.events
        if stream.enabled:
            stream.emit(
                self.sim._now, node=self.name, subsystem=subsystem,
                name=name, **fields,
            )

    def count_syscall(self, op: str) -> None:
        """Account one supervisor call (channel ops, forwarded UNIX calls)."""
        self._m_syscalls.value += 1.0
        counter = self._m_syscalls_by_op.get(op)
        if counter is None:
            counter = self.metrics.counter("kernel.syscalls_by_op", labels=(op,))
            self._m_syscalls_by_op[op] = counter
        counter.value += 1.0

    # ------------------------------------------------------------------
    # CPU charge helpers
    # ------------------------------------------------------------------
    def isr_exec(self, duration: float) -> "Event":
        """Charge interrupt-level CPU time (non-preemptible)."""
        return self.cpu.execute(
            duration, PRIORITY_ISR, None, Category.SYSTEM, preemptible=False
        )

    def k_exec(self, duration: float) -> "Event":
        """Charge kernel-path CPU time."""
        return self.cpu.execute(duration, PRIORITY_KERNEL, None, Category.SYSTEM)

    def u_exec(self, sp: Subprocess, duration: float) -> "Event":
        """Charge user-context CPU time for a subprocess."""
        return self.cpu.execute(
            duration, sp.cpu_priority, sp.uid, Category.USER
        )

    # ------------------------------------------------------------------
    # network send
    # ------------------------------------------------------------------
    def post(
        self,
        dst: int,
        size: int,
        kind: MessageKind,
        channel: int = 0,
        payload: Any = None,
        src_channel: int = 0,
        xfer: Optional[int] = None,
        batched: bool = False,
    ) -> "Event":
        """Hand a message to the interface (non-blocking, fire-and-forget).

        The returned event fires when the first hop accepts the message;
        most callers ignore it because the HPC hardware guarantees
        delivery (Section 2).
        """
        packet = Packet(
            src=self.address, dst=dst, size=size, kind=kind,
            channel=channel, src_channel=src_channel, payload=payload,
            xfer=xfer, batched=batched,
        )
        # Direct counter-field updates on the per-message kernel paths
        # (post/syscall/interrupt): the ``inc`` frames showed up in
        # engine profiles.
        self._m_packets_posted.value += 1.0
        self._m_bytes_posted.value += size
        return self.iface.send(packet)

    # ------------------------------------------------------------------
    # interrupt service
    # ------------------------------------------------------------------
    def _rx_interrupt(self) -> None:
        if self._isr_active:
            return
        self._isr_active = True
        self.sim.process(self._isr())

    def _isr(self):
        """Drain the interface; one interrupt overhead per burst.

        The paper's no-deadlock argument ("the VORX kernel reads in
        messages immediately when they arrive") is this loop: buffers are
        freed as fast as the CPU can demultiplex.
        """
        self._m_interrupts.value += 1.0
        yield self.isr_exec(self.costs.interrupt_overhead)
        while True:
            packet = self.iface.read()
            if packet is None:
                break
            yield from self._dispatch(packet)
        self._isr_active = False

    def _dispatch(self, packet: Packet):
        """Generator (ISR context): demultiplex one arrival."""
        kind = packet.kind
        if kind is MessageKind.CHANNEL_DATA:
            yield from self.channels.on_data(packet)
        elif kind is MessageKind.CHANNEL_ACK:
            yield from self.channels.on_ack(packet)
        elif kind is MessageKind.CHANNEL_CTRL:
            yield from self.channels.on_ctrl(packet)
        elif kind is MessageKind.MANAGER:
            yield from self.manager.on_manager(packet)
        elif kind is MessageKind.USER_OBJECT:
            yield from self.objects.on_message(packet)
        elif kind is MessageKind.MULTICAST:
            yield from self.multicast.on_message(packet)
        else:
            handler = self._kind_handlers.get(kind)
            if handler is None:
                self.metrics.counter("kernel.packets_dropped").inc()
                self.emit("kernel", "dropped-packet", kind=str(kind.value),
                          src=packet.src, size=packet.size)
                yield self.isr_exec(self.costs.chan_recv_kernel)
            else:
                yield from handler(packet)

    def register_handler(
        self, kind: MessageKind, handler: Callable[[Packet], Generator]
    ) -> None:
        """Install an extension service's handler for a message kind."""
        if kind in self._kind_handlers:
            raise ValueError(f"{self.name}: handler for {kind} already present")
        self._kind_handlers[kind] = handler

    def dispatch_out_of_band(self, packet: Packet) -> None:
        """Dispatch a packet found while polling (interrupts disabled)."""
        self.sim.process(self._dispatch(packet))

    # ------------------------------------------------------------------
    # subprocess lifecycle and blocking
    # ------------------------------------------------------------------
    def spawn(
        self,
        program: Callable[..., Generator],
        name: Optional[str] = None,
        priority: int = 0,
        process_name: Optional[str] = None,
    ) -> Subprocess:
        """Create a subprocess running ``program(env)``.

        ``program`` is a generator function taking an
        :class:`~repro.vorx.env.Env`; its return value becomes
        ``subprocess.result``.
        """
        from repro.vorx.env import Env

        name = name or f"sp{len(self.subprocesses)}"
        sp = Subprocess(self, name, priority, process_name)

        def main():
            # Initial dispatch: load the subprocess's context.
            yield self.cpu.execute(
                self.costs.context_switch, sp.cpu_priority, sp.uid,
                Category.SYSTEM,
            )
            self._m_context_switches.inc()
            sp.state = SubprocessState.RUNNING
            env = Env(self, sp)
            try:
                sp.result = yield from program(env)
                sp.state = SubprocessState.DONE
            except BaseException:
                sp.state = SubprocessState.FAILED
                raise
            finally:
                self._update_idle_reason()
            return sp.result

        sp.process = self.sim.process(main())
        sp.process.name = sp.uid
        self.subprocesses.append(sp)
        self._update_idle_reason()
        return sp

    def block(self, sp: Subprocess, reason: BlockReason, event: "Event"):
        """Generator: block ``sp`` on ``event``; charge the wakeup path.

        Every block/wake cycle costs ``wakeup_overhead`` (kernel readying
        the subprocess) plus the 80 us ``context_switch`` to restore its
        registers -- the Section 5 cost that motivates the coroutine and
        interrupt-level program structures compared in experiment E11.
        """
        sp.state = SubprocessState.BLOCKED
        sp.blocked_on = reason
        counter = self._m_blocks_by_reason.get(reason)
        if counter is None:
            counter = self.metrics.counter("kernel.blocks", labels=(reason.value,))
            self._m_blocks_by_reason[reason] = counter
        counter.value += 1.0
        # Hoist ``_update_idle_reason``'s oscilloscope gate to the call
        # site: block/unblock is per message, and with the timeline off
        # (the common batch configuration) the call is a no-op.
        if self.cpu.timeline.enabled:
            self._update_idle_reason()
        try:
            value = yield event
        finally:
            sp.state = SubprocessState.READY
            sp.blocked_on = None
            if self.cpu.timeline.enabled:
                self._update_idle_reason()
        yield self.cpu.execute(
            self.costs.wakeup_overhead + self.costs.context_switch,
            sp.cpu_priority, sp.uid, Category.SYSTEM,
        )
        self._m_context_switches.value += 1.0
        sp.state = SubprocessState.RUNNING
        return value

    # ------------------------------------------------------------------
    # oscilloscope support
    # ------------------------------------------------------------------
    def _update_idle_reason(self) -> None:
        # Runs on every block/unblock: a single allocation-free pass over
        # the subprocess table, tracking whether every live subprocess is
        # blocked and which of the INPUT/OUTPUT/other reasons occur.
        # Purely observational -- skipped entirely when the oscilloscope
        # timeline is not recording.
        if not self.cpu.timeline.enabled:
            return
        any_live = False
        inputs = outputs = others = 0
        for sp in self.subprocesses:
            if not sp.is_live:
                continue
            any_live = True
            if sp.state is not SubprocessState.BLOCKED:
                if self._last_idle_category is not Category.IDLE_OTHER:
                    self._last_idle_category = Category.IDLE_OTHER
                    self.cpu.set_idle_reason(Category.IDLE_OTHER)
                return
            reason = sp.blocked_on
            if reason is BlockReason.INPUT:
                inputs += 1
            elif reason is BlockReason.OUTPUT:
                outputs += 1
            else:
                others += 1
        if not any_live or others:
            category = Category.IDLE_OTHER
        elif inputs and outputs:
            category = Category.IDLE_MIXED
        elif inputs:
            category = Category.IDLE_INPUT
        else:
            category = Category.IDLE_OUTPUT
        if category is not self._last_idle_category:
            self._last_idle_category = category
            self.cpu.set_idle_reason(category)

    # ------------------------------------------------------------------
    # prof support
    # ------------------------------------------------------------------
    def prof_record(self, sp: Subprocess, label: str, duration: float) -> None:
        self.metrics.counter(
            "prof.user_us", labels=(sp.process_name, label)
        ).inc(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeKernel {self.name} addr={self.address}>"
