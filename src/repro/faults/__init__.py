"""repro.faults: deterministic, seedable fault injection (paper Section 2).

Section 2 of the paper is a post-mortem of communication failure on the
S/NET -- fifo overflow, the retransmission lockout, and the recovery
protocols AT&T weighed before building flow control into the HPC
hardware.  This package lets the reproduction *create* those hostile
conditions on demand instead of only simulating the happy path:

* :class:`FaultPlan` describes what to inject -- drop / corrupt / delay /
  duplicate probabilities (globally or per link), forced S/NET fifo
  overflows, node crashes at given times, and NIC stall windows -- all
  driven by per-site seeded RNG streams so identical seeds give
  identical fault schedules.
* :class:`FaultInjector` is the runtime half: it hangs off the simulator
  (``sim.faults``) and is consulted by the transport hooks in
  :mod:`repro.hpc.link`, :mod:`repro.hpc.nic`, :mod:`repro.snet.bus`,
  :mod:`repro.snet.fifo` and the VORX channel stop-and-wait path.

With no plan attached, every hook is a single ``is None`` check and the
simulation is bit-identical to an uninstrumented run.  Injected losses
exercise the *real* recovery machinery: VORX channels recover through
CTRL_RETRY/NAK retransmission (plus an ack watchdog armed only while a
plan is attached), while the S/NET stack recovers through the Section 2
policy spectrum (busy retransmit, random backoff, reservation).
"""

from repro.faults.injector import FaultInjector, fault_summary
from repro.faults.plan import LinkFaults, FaultPlan

__all__ = ["FaultPlan", "LinkFaults", "FaultInjector", "fault_summary"]
