"""The runtime fault injector consulted by the transport hooks.

One :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a simulator.  Hooks ask it for a decision per message; every injected
fault increments a counter in the ``faults`` vstat registry and emits a
structured trace event, so experiments can report exactly what was
injected and what the recovery machinery did about it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.hpc.message import Packet
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class LinkDecision:
    """What an HPC link should do to one message."""

    drop: bool = False
    corrupt: bool = False
    delay_us: float = 0.0
    duplicate: bool = False


@dataclass(frozen=True)
class BusDecision:
    """What the S/NET bus should do to one message.

    S/NET delivery is synchronous (the sender learns accepted/fifo-full
    at the end of its bus tenure), so link-level drop and corruption map
    onto the rejection signal -- exactly the event the Section 2 software
    recovery strategies are built to handle.
    """

    reject: bool = False
    forced_overflow: bool = False
    delay_us: float = 0.0
    duplicate: bool = False


_NO_LINK_FAULT = LinkDecision()
_NO_BUS_FAULT = BusDecision()


class FaultInjector:
    """Per-simulation fault state: seeded RNG streams, crash/stall clocks."""

    def __init__(self, sim: "Simulator", plan: "FaultPlan") -> None:
        self.sim = sim
        self.plan = plan
        #: vstat registry all injection counters live in.
        self.metrics = sim.vstat.registry("faults")
        self._m_injected = self.metrics.counter("faults.injected")
        self._rngs: dict[str, random.Random] = {}
        self._site_faults: dict[str, object] = {}
        self._stalls: dict[str, list[tuple[float, float]]] = {}
        self._windows: dict[str, list] = {}
        self._brownouts: dict[str, list[tuple[float, float, float]]] = {}
        #: address -> crash time; populated up front so hooks never race
        #: the crash callback.
        self.crash_times = dict(plan.node_crashes)
        self._injections = 0

    # ------------------------------------------------------------------
    # deterministic per-site streams
    # ------------------------------------------------------------------
    def rng(self, site: str) -> random.Random:
        """The RNG stream for ``site`` (depends only on seed + site name)."""
        stream = self._rngs.get(site)
        if stream is None:
            stream = random.Random(f"{self.plan.seed}:{site}")
            self._rngs[site] = stream
        return stream

    def _faults_at(self, site: str):
        faults = self._site_faults.get(site)
        if faults is None:
            faults = self.plan.resolve(site)
            self._site_faults[site] = faults
        return faults

    def _effective(self, site: str):
        """The fault probabilities in force at ``site`` *now*: the first
        active ``site_windows`` override wins, else the static table."""
        windows = self._windows.get(site)
        if windows is None:
            windows = self.plan.window_faults(site)
            self._windows[site] = windows
        if windows:
            now = self.sim.now
            for start, end, faults in windows:
                if start <= now < end:
                    return faults
        return self._faults_at(site)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _budget_left(self) -> bool:
        cap = self.plan.max_injections
        return cap is None or self._injections < cap

    def note(self, fault: str, site: str, **fields) -> None:
        """Count one injected fault and emit its trace event."""
        self._injections += 1
        self._m_injected.inc()
        self.metrics.counter("faults.injected_by_kind", labels=(fault,)).inc()
        stream = self.sim.vstat.events
        if stream.enabled:
            stream.emit(
                self.sim.now, node=site, subsystem="faults",
                name=f"fault-{fault}", **fields,
            )

    @property
    def injections(self) -> int:
        """Faults injected so far (crash isolation drops not included)."""
        return self._injections

    def summary(self) -> dict[str, int]:
        """Injected fault counts by kind (for reports and tests)."""
        return {
            labels[0]: int(counter.value)  # type: ignore[attr-defined]
            for labels, counter in self.metrics.labelled(
                "faults.injected_by_kind"
            ).items()
        }

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    def is_crashed(self, address: int) -> bool:
        """True once ``address`` has passed its crash time."""
        crash_time = self.crash_times.get(address)
        return crash_time is not None and self.sim.now >= crash_time

    def _crash(self, address: int, kernel) -> None:
        """Crash callback: mask the node's interrupts, record the event."""
        name = getattr(kernel, "name", f"addr{address}")
        iface = getattr(kernel, "iface", None)
        if iface is not None:
            iface.interrupts_enabled = False
        self.metrics.counter("faults.node_crashes").inc()
        stream = self.sim.vstat.events
        if stream.enabled:
            stream.emit(
                self.sim.now, node=name, subsystem="faults",
                name="node-crash", address=address,
            )

    def crash_drop(self, site: str, packet: "Packet") -> bool:
        """True if ``packet`` involves a crashed node (drop silently).

        Crash isolation is not an "injection": it is the dead node's
        interface doing nothing, so it has its own counter and does not
        consume the ``max_injections`` budget.
        """
        if self.is_crashed(packet.src) or self.is_crashed(packet.dst):
            self.metrics.counter("faults.crash_drops").inc()
            stream = self.sim.vstat.events
            if stream.enabled:
                stream.emit(
                    self.sim.now, node=site, subsystem="faults",
                    name="fault-crash-drop", src=packet.src, dst=packet.dst,
                    size=packet.size,
                )
            return True
        return False

    # ------------------------------------------------------------------
    # stalls
    # ------------------------------------------------------------------
    def stall_remaining(self, site: str) -> float:
        """Microseconds until the active stall window on ``site`` ends."""
        windows = self._stalls.get(site)
        if windows is None:
            windows = self.plan.stall_windows(site)
            self._stalls[site] = windows
        now = self.sim.now
        remaining = 0.0
        for start, end in windows:
            if start <= now < end:
                remaining = max(remaining, end - now)
        if remaining > 0:
            self.metrics.counter("faults.nic_stalls").inc()
            stream = self.sim.vstat.events
            if stream.enabled:
                stream.emit(
                    self.sim.now, node=site, subsystem="faults",
                    name="nic-stall", stall_us=remaining,
                )
        return remaining

    # ------------------------------------------------------------------
    # brownouts
    # ------------------------------------------------------------------
    def brownout_extra_us(self, site: str, base_us: float) -> float:
        """Extra serialization microseconds for ``site`` right now.

        During an active ``link_brownouts`` window a link takes
        ``multiplier`` times its normal wire time; this returns the
        *additional* delay on top of ``base_us`` (0.0 outside windows).
        Brownouts are degradation, not loss: they hit every message kind
        and do not consume the ``max_injections`` budget.
        """
        windows = self._brownouts.get(site)
        if windows is None:
            windows = self.plan.brownout_windows(site)
            self._brownouts[site] = windows
        if not windows:
            return 0.0
        now = self.sim.now
        multiplier = 1.0
        for start, end, factor in windows:
            if start <= now < end:
                multiplier = max(multiplier, factor)
        if multiplier <= 1.0:
            return 0.0
        extra = base_us * (multiplier - 1.0)
        self.metrics.counter("faults.brownouts").inc()
        stream = self.sim.vstat.events
        if stream.enabled:
            stream.emit(
                self.sim.now, node=site, subsystem="faults",
                name="link-brownout", extra_us=extra,
            )
        return extra

    # ------------------------------------------------------------------
    # per-message decisions
    # ------------------------------------------------------------------
    def link_decision(self, site: str, packet: "Packet") -> LinkDecision:
        """Decide drop/corrupt/delay/duplicate for one HPC link message."""
        faults = self._effective(site)
        if not faults.any_loss or str(packet.kind) not in self.plan.kinds:
            return _NO_LINK_FAULT
        if not self._budget_left():
            return _NO_LINK_FAULT
        stream = self.rng(site)
        drop = stream.random() < faults.drop
        corrupt = (not drop) and stream.random() < faults.corrupt
        delay_us = 0.0
        if stream.random() < faults.delay:
            delay_us = stream.uniform(*faults.delay_us)
        duplicate = (not drop) and stream.random() < faults.duplicate
        if drop:
            self.note("drop", site, src=packet.src, dst=packet.dst,
                      size=packet.size, kind=str(packet.kind))
        if corrupt:
            self.note("corrupt", site, src=packet.src, dst=packet.dst,
                      size=packet.size, kind=str(packet.kind))
        if delay_us > 0:
            self.note("delay", site, src=packet.src, dst=packet.dst,
                      delay_us=delay_us)
        if duplicate:
            self.note("duplicate", site, src=packet.src, dst=packet.dst,
                      size=packet.size)
        if drop or corrupt or delay_us > 0 or duplicate:
            return LinkDecision(drop, corrupt, delay_us, duplicate)
        return _NO_LINK_FAULT

    def bus_decision(self, site: str, packet: "Packet") -> BusDecision:
        """Decide reject/overflow/delay/duplicate for one S/NET message."""
        faults = self._effective(site)
        overflow_p = self.plan.force_fifo_overflow
        if not faults.any_loss and overflow_p == 0.0:
            return _NO_BUS_FAULT
        if not self._budget_left():
            return _NO_BUS_FAULT
        stream = self.rng(site)
        reject = stream.random() < faults.drop
        if not reject and stream.random() < faults.corrupt:
            reject = True
        forced = (not reject) and stream.random() < overflow_p
        delay_us = 0.0
        if stream.random() < faults.delay:
            delay_us = stream.uniform(*faults.delay_us)
        duplicate = (not reject) and stream.random() < faults.duplicate
        if reject:
            self.note("bus-reject", site, src=packet.src, dst=packet.dst,
                      size=packet.size)
        if forced:
            self.note("forced-overflow", site, src=packet.src,
                      dst=packet.dst, size=packet.size)
        if delay_us > 0:
            self.note("delay", site, src=packet.src, dst=packet.dst,
                      delay_us=delay_us)
        if duplicate:
            self.note("duplicate", site, src=packet.src, dst=packet.dst,
                      size=packet.size)
        if reject or forced or delay_us > 0 or duplicate:
            return BusDecision(reject, forced, delay_us, duplicate)
        return _NO_BUS_FAULT


def fault_summary(sim) -> dict[str, int]:
    """Injected fault counts by kind for ``sim`` (empty if no plan)."""
    injector: Optional[FaultInjector] = getattr(sim, "faults", None)
    if injector is None:
        return {}
    return injector.summary()
