"""Fault plans: a declarative, validated description of what to inject.

A :class:`FaultPlan` is pure configuration -- it owns no simulator state
and can be attached to any number of systems (each attach creates an
independent :class:`~repro.faults.injector.FaultInjector` whose RNG
streams depend only on ``seed`` and the site names, never on sharing).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: Message kinds whose loss the VORX channel layer can recover from
#: (stop-and-wait retransmission); link-level drop/corrupt/duplicate
#: default to these so protocols without recovery stay unharmed.
DEFAULT_FAULTABLE_KINDS: tuple[str, ...] = ("channel-data", "channel-ack")


def _check_probability(argument: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(
            f"FaultPlan({argument}=...) must be a number in [0, 1], "
            f"got {value!r}"
        )
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"FaultPlan({argument}=...) must be a probability in [0, 1], "
            f"got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class LinkFaults:
    """The per-site fault probabilities resolved for one link/bus site."""

    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    delay_us: tuple[float, float] = (50.0, 500.0)

    @property
    def any_loss(self) -> bool:
        return (self.drop or self.corrupt or self.delay or self.duplicate) > 0


class FaultPlan:
    """A deterministic, seedable description of faults to inject.

    All arguments are keyword-only.  Probabilities are per *message* at
    the site where the hook runs (a link serialization, a bus tenure).

    Parameters
    ----------
    seed:
        Root seed.  Every injection site derives its own RNG stream from
        ``(seed, site-name)``, so identical seeds give identical fault
        schedules regardless of how many sites exist.
    drop, corrupt, delay, duplicate:
        Global per-message probabilities applied at every HPC link (and,
        for ``drop``/``corrupt``, mapped to the rejection signal on the
        S/NET bus, where delivery is synchronous).
    delay_us:
        ``(lo, hi)`` microsecond range an injected delay is drawn from.
    links:
        Per-site overrides: a mapping of fnmatch-style site-name patterns
        (link names such as ``"nic0->c0"``, or ``"snet.bus"``) to dicts
        with any of ``drop``/``corrupt``/``delay``/``duplicate``/
        ``delay_us``.  The first matching pattern wins.
    force_fifo_overflow:
        Probability that an S/NET fifo deposit is forced to overflow even
        when space exists -- the hardware signals fifo-full and retains a
        partial prefix, exercising the software recovery strategies.
    node_crashes:
        Mapping of fabric/bus address -> crash time (us).  From that time
        on the node's interface neither sends nor receives (traffic to
        and from it is dropped) and its receive interrupt is masked.
    nic_stalls:
        Iterable of ``(site_pattern, start_us, duration_us)`` windows
        during which matching interfaces/links do not transmit.
    max_injections:
        Optional global cap on injected faults (crash isolation drops are
        not counted against it).
    channel_retry_timeout_us:
        Ack watchdog period for the VORX stop-and-wait path, armed only
        while a plan is attached.
    kinds:
        Message kinds eligible for link-level drop/corrupt/delay/
        duplicate (default: channel data + ack, the kinds the stop-and-
        wait machinery can recover).
    """

    _FIELDS = (
        "seed", "drop", "corrupt", "delay", "duplicate", "delay_us",
        "links", "force_fifo_overflow", "node_crashes", "nic_stalls",
        "max_injections", "channel_retry_timeout_us", "kinds",
    )

    def __init__(
        self,
        *,
        seed: int = 1990,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        delay_us: Sequence[float] = (50.0, 500.0),
        links: Optional[Mapping[str, Mapping]] = None,
        force_fifo_overflow: float = 0.0,
        node_crashes: Optional[Mapping[int, float]] = None,
        nic_stalls: Optional[Iterable[tuple[str, float, float]]] = None,
        max_injections: Optional[int] = None,
        channel_retry_timeout_us: float = 5_000.0,
        kinds: Sequence[str] = DEFAULT_FAULTABLE_KINDS,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"FaultPlan(seed=...) must be an int, got {seed!r}")
        self.seed = seed
        self.defaults = LinkFaults(
            drop=_check_probability("drop", drop),
            corrupt=_check_probability("corrupt", corrupt),
            delay=_check_probability("delay", delay),
            duplicate=_check_probability("duplicate", duplicate),
            delay_us=self._check_delay_range("delay_us", delay_us),
        )
        self.links: dict[str, LinkFaults] = {}
        for pattern, override in (links or {}).items():
            unknown = set(override) - {
                "drop", "corrupt", "delay", "duplicate", "delay_us"
            }
            if unknown:
                raise ValueError(
                    f"FaultPlan(links=...) override for {pattern!r} has "
                    f"unknown field(s) {sorted(unknown)!r}"
                )
            merged = {
                "drop": self.defaults.drop,
                "corrupt": self.defaults.corrupt,
                "delay": self.defaults.delay,
                "duplicate": self.defaults.duplicate,
                **{k: v for k, v in override.items() if k != "delay_us"},
            }
            merged = {
                key: _check_probability(f"links[{pattern!r}].{key}", value)
                for key, value in merged.items()
            }
            merged["delay_us"] = self._check_delay_range(
                f"links[{pattern!r}].delay_us",
                override.get("delay_us", self.defaults.delay_us),
            )
            self.links[pattern] = LinkFaults(**merged)
        self.force_fifo_overflow = _check_probability(
            "force_fifo_overflow", force_fifo_overflow
        )
        self.node_crashes: dict[int, float] = {}
        for address, crash_time in (node_crashes or {}).items():
            if not isinstance(address, int):
                raise TypeError(
                    f"FaultPlan(node_crashes=...) keys must be int "
                    f"addresses, got {address!r}"
                )
            if crash_time < 0:
                raise ValueError(
                    f"FaultPlan(node_crashes=...) crash time for node "
                    f"{address} must be >= 0, got {crash_time!r}"
                )
            self.node_crashes[address] = float(crash_time)
        self.nic_stalls: list[tuple[str, float, float]] = []
        for window in nic_stalls or ():
            try:
                pattern, start, duration = window
            except (TypeError, ValueError):
                raise ValueError(
                    "FaultPlan(nic_stalls=...) entries must be "
                    f"(site_pattern, start_us, duration_us), got {window!r}"
                ) from None
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"FaultPlan(nic_stalls=...) window {window!r} needs "
                    "start_us >= 0 and duration_us > 0"
                )
            self.nic_stalls.append((str(pattern), float(start), float(duration)))
        if max_injections is not None and max_injections < 0:
            raise ValueError(
                f"FaultPlan(max_injections=...) must be >= 0 or None, "
                f"got {max_injections!r}"
            )
        self.max_injections = max_injections
        if channel_retry_timeout_us <= 0:
            raise ValueError(
                f"FaultPlan(channel_retry_timeout_us=...) must be positive, "
                f"got {channel_retry_timeout_us!r}"
            )
        self.channel_retry_timeout_us = float(channel_retry_timeout_us)
        self.kinds = frozenset(str(kind) for kind in kinds)

    @staticmethod
    def _check_delay_range(argument: str, value) -> tuple[float, float]:
        try:
            lo, hi = value
        except (TypeError, ValueError):
            raise ValueError(
                f"FaultPlan({argument}=...) must be a (lo, hi) microsecond "
                f"pair, got {value!r}"
            ) from None
        if lo < 0 or hi < lo:
            raise ValueError(
                f"FaultPlan({argument}=...) needs 0 <= lo <= hi, "
                f"got {value!r}"
            )
        return (float(lo), float(hi))

    @property
    def can_lose_messages(self) -> bool:
        """True if this plan can make channel traffic vanish.

        The VORX ack watchdog is armed only when it can (drops, faults on
        some link, a crashed node); an all-zero plan leaves the machine's
        event schedule bit-identical to no plan at all.
        """
        return (
            self.defaults.any_loss
            or any(faults.any_loss for faults in self.links.values())
            or bool(self.node_crashes)
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, site: str) -> LinkFaults:
        """The fault probabilities in force at ``site`` (first match wins)."""
        for pattern, faults in self.links.items():
            if fnmatchcase(site, pattern):
                return faults
        return self.defaults

    def stall_windows(self, site: str) -> list[tuple[float, float]]:
        """The ``(start, end)`` stall windows applying to ``site``."""
        return [
            (start, start + duration)
            for pattern, start, duration in self.nic_stalls
            if fnmatchcase(site, pattern)
        ]

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, system) -> "FaultInjector":
        """Attach to a ``VorxSystem``/``SnetSystem``; returns the injector.

        ``system`` only needs ``sim`` plus (for crash wiring) a way to
        find a kernel by address -- both system classes provide one.
        """
        from repro.faults.injector import FaultInjector

        sim = system.sim
        if getattr(sim, "faults", None) is not None:
            raise RuntimeError(
                "a FaultPlan is already attached to this simulator"
            )
        injector = FaultInjector(sim, self)
        sim.faults = injector
        for address, crash_time in self.node_crashes.items():
            kernel = self._kernel_for(system, address)
            sim.call_later(
                max(0.0, crash_time - sim.now), injector._crash, address,
                kernel,
            )
        return injector

    @staticmethod
    def _kernel_for(system, address: int):
        """Best-effort kernel lookup by address (VORX or Meglos systems)."""
        finder = getattr(system, "kernel_at", None)
        if finder is not None:
            try:
                return finder(address)
            except KeyError:
                return None
        nodes = getattr(system, "nodes", None)
        if nodes is not None:
            for node in nodes:
                if getattr(node, "address", None) == address:
                    return node
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.defaults
        return (
            f"<FaultPlan seed={self.seed} drop={d.drop} corrupt={d.corrupt} "
            f"delay={d.delay} duplicate={d.duplicate} "
            f"overflow={self.force_fifo_overflow} "
            f"crashes={len(self.node_crashes)} stalls={len(self.nic_stalls)}>"
        )
