"""Fault plans: a declarative, validated description of what to inject.

A :class:`FaultPlan` is pure configuration -- it owns no simulator state
and can be attached to any number of systems (each attach creates an
independent :class:`~repro.faults.injector.FaultInjector` whose RNG
streams depend only on ``seed`` and the site names, never on sharing).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: Message kinds whose loss the VORX channel layer can recover from
#: (stop-and-wait retransmission); link-level drop/corrupt/duplicate
#: default to these so protocols without recovery stay unharmed.
DEFAULT_FAULTABLE_KINDS: tuple[str, ...] = ("channel-data", "channel-ack")


@dataclass(frozen=True)
class _EndpointShim:
    """Kernel-shaped stand-in for a raw fabric endpoint (crash wiring
    only needs ``name`` and ``iface``)."""

    name: str
    iface: object


def _check_probability(argument: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(
            f"FaultPlan({argument}=...) must be a number in [0, 1], "
            f"got {value!r}"
        )
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"FaultPlan({argument}=...) must be a probability in [0, 1], "
            f"got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class LinkFaults:
    """The per-site fault probabilities resolved for one link/bus site."""

    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    delay_us: tuple[float, float] = (50.0, 500.0)

    @property
    def any_loss(self) -> bool:
        return (self.drop or self.corrupt or self.delay or self.duplicate) > 0


class FaultPlan:
    """A deterministic, seedable description of faults to inject.

    All arguments are keyword-only.  Probabilities are per *message* at
    the site where the hook runs (a link serialization, a bus tenure).

    Parameters
    ----------
    seed:
        Root seed.  Every injection site derives its own RNG stream from
        ``(seed, site-name)``, so identical seeds give identical fault
        schedules regardless of how many sites exist.
    drop, corrupt, delay, duplicate:
        Global per-message probabilities applied at every HPC link (and,
        for ``drop``/``corrupt``, mapped to the rejection signal on the
        S/NET bus, where delivery is synchronous).
    delay_us:
        ``(lo, hi)`` microsecond range an injected delay is drawn from.
    links:
        Per-site overrides: a mapping of fnmatch-style site-name patterns
        (link names such as ``"nic0->c0"``, or ``"snet.bus"``) to dicts
        with any of ``drop``/``corrupt``/``delay``/``duplicate``/
        ``delay_us``.  The first matching pattern wins.
    force_fifo_overflow:
        Probability that an S/NET fifo deposit is forced to overflow even
        when space exists -- the hardware signals fifo-full and retains a
        partial prefix, exercising the software recovery strategies.
    node_crashes:
        Mapping of fabric/bus address -> crash time (us).  From that time
        on the node's interface neither sends nor receives (traffic to
        and from it is dropped) and its receive interrupt is masked.
    nic_stalls:
        Iterable of ``(site_pattern, start_us, duration_us)`` windows
        during which matching interfaces/links do not transmit.
    site_windows:
        Iterable of ``(site_pattern, start_us, duration_us, overrides)``
        entries applying a per-site fault override (same fields as
        ``links``) only while the window is active.  Windows are checked
        before the static ``links`` table; the first *active* matching
        window wins.  This is the primitive the chaos shapes (correlated
        link-group failures, network partitions) compile down to.
    link_brownouts:
        Iterable of ``(site_pattern, start_us, duration_us, multiplier)``
        windows during which matching links serialize ``multiplier``
        times slower -- a degraded link, distinct from a full
        ``nic_stalls`` outage.  Applies to every message kind and does
        not consume the ``max_injections`` budget.
    max_injections:
        Optional global cap on injected faults (crash isolation drops are
        not counted against it).
    channel_retry_timeout_us:
        Ack watchdog period for the VORX stop-and-wait path, armed only
        while a plan is attached.
    kinds:
        Message kinds eligible for link-level drop/corrupt/delay/
        duplicate (default: channel data + ack, the kinds the stop-and-
        wait machinery can recover).
    """

    _FIELDS = (
        "seed", "drop", "corrupt", "delay", "duplicate", "delay_us",
        "links", "force_fifo_overflow", "node_crashes", "nic_stalls",
        "site_windows", "link_brownouts",
        "max_injections", "channel_retry_timeout_us", "kinds",
    )

    def __init__(
        self,
        *,
        seed: int = 1990,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        delay_us: Sequence[float] = (50.0, 500.0),
        links: Optional[Mapping[str, Mapping]] = None,
        force_fifo_overflow: float = 0.0,
        node_crashes: Optional[Mapping[int, float]] = None,
        nic_stalls: Optional[Iterable[tuple[str, float, float]]] = None,
        site_windows: Optional[
            Iterable[tuple[str, float, float, Mapping]]
        ] = None,
        link_brownouts: Optional[
            Iterable[tuple[str, float, float, float]]
        ] = None,
        max_injections: Optional[int] = None,
        channel_retry_timeout_us: float = 5_000.0,
        kinds: Sequence[str] = DEFAULT_FAULTABLE_KINDS,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"FaultPlan(seed=...) must be an int, got {seed!r}")
        self.seed = seed
        self.defaults = LinkFaults(
            drop=_check_probability("drop", drop),
            corrupt=_check_probability("corrupt", corrupt),
            delay=_check_probability("delay", delay),
            duplicate=_check_probability("duplicate", duplicate),
            delay_us=self._check_delay_range("delay_us", delay_us),
        )
        self.links: dict[str, LinkFaults] = {}
        for pattern, override in (links or {}).items():
            self.links[pattern] = self._merge_override(
                "links", pattern, override
            )
        self.force_fifo_overflow = _check_probability(
            "force_fifo_overflow", force_fifo_overflow
        )
        self.node_crashes: dict[int, float] = {}
        for address, crash_time in (node_crashes or {}).items():
            if not isinstance(address, int):
                raise TypeError(
                    f"FaultPlan(node_crashes=...) keys must be int "
                    f"addresses, got {address!r}"
                )
            if crash_time < 0:
                raise ValueError(
                    f"FaultPlan(node_crashes=...) crash time for node "
                    f"{address} must be >= 0, got {crash_time!r}"
                )
            self.node_crashes[address] = float(crash_time)
        self.nic_stalls: list[tuple[str, float, float]] = []
        for window in nic_stalls or ():
            try:
                pattern, start, duration = window
            except (TypeError, ValueError):
                raise ValueError(
                    "FaultPlan(nic_stalls=...) entries must be "
                    f"(site_pattern, start_us, duration_us), got {window!r}"
                ) from None
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"FaultPlan(nic_stalls=...) window {window!r} needs "
                    "start_us >= 0 and duration_us > 0"
                )
            self.nic_stalls.append((str(pattern), float(start), float(duration)))
        self.site_windows: list[tuple[str, float, float, LinkFaults]] = []
        for window in site_windows or ():
            try:
                pattern, start, duration, override = window
            except (TypeError, ValueError):
                raise ValueError(
                    "FaultPlan(site_windows=...) entries must be "
                    "(site_pattern, start_us, duration_us, overrides), "
                    f"got {window!r}"
                ) from None
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"FaultPlan(site_windows=...) window {window!r} needs "
                    "start_us >= 0 and duration_us > 0"
                )
            faults = self._merge_override("site_windows", pattern, override)
            self.site_windows.append(
                (str(pattern), float(start), float(start) + float(duration),
                 faults)
            )
        self.link_brownouts: list[tuple[str, float, float, float]] = []
        for window in link_brownouts or ():
            try:
                pattern, start, duration, multiplier = window
            except (TypeError, ValueError):
                raise ValueError(
                    "FaultPlan(link_brownouts=...) entries must be "
                    "(site_pattern, start_us, duration_us, multiplier), "
                    f"got {window!r}"
                ) from None
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"FaultPlan(link_brownouts=...) window {window!r} needs "
                    "start_us >= 0 and duration_us > 0"
                )
            if not isinstance(multiplier, (int, float)) or multiplier < 1.0:
                raise ValueError(
                    f"FaultPlan(link_brownouts=...) multiplier must be "
                    f">= 1.0, got {multiplier!r}"
                )
            self.link_brownouts.append(
                (str(pattern), float(start), float(start) + float(duration),
                 float(multiplier))
            )
        if max_injections is not None and max_injections < 0:
            raise ValueError(
                f"FaultPlan(max_injections=...) must be >= 0 or None, "
                f"got {max_injections!r}"
            )
        self.max_injections = max_injections
        if channel_retry_timeout_us <= 0:
            raise ValueError(
                f"FaultPlan(channel_retry_timeout_us=...) must be positive, "
                f"got {channel_retry_timeout_us!r}"
            )
        self.channel_retry_timeout_us = float(channel_retry_timeout_us)
        self.kinds = frozenset(str(kind) for kind in kinds)

    def _merge_override(
        self, argument: str, pattern: str, override: Mapping
    ) -> LinkFaults:
        """Defaults + one per-site override dict, fully validated."""
        unknown = set(override) - {
            "drop", "corrupt", "delay", "duplicate", "delay_us"
        }
        if unknown:
            raise ValueError(
                f"FaultPlan({argument}=...) override for {pattern!r} has "
                f"unknown field(s) {sorted(unknown)!r}"
            )
        merged = {
            "drop": self.defaults.drop,
            "corrupt": self.defaults.corrupt,
            "delay": self.defaults.delay,
            "duplicate": self.defaults.duplicate,
            **{k: v for k, v in override.items() if k != "delay_us"},
        }
        merged = {
            key: _check_probability(f"{argument}[{pattern!r}].{key}", value)
            for key, value in merged.items()
        }
        merged["delay_us"] = self._check_delay_range(
            f"{argument}[{pattern!r}].delay_us",
            override.get("delay_us", self.defaults.delay_us),
        )
        return LinkFaults(**merged)

    @staticmethod
    def _check_delay_range(argument: str, value) -> tuple[float, float]:
        try:
            lo, hi = value
        except (TypeError, ValueError):
            raise ValueError(
                f"FaultPlan({argument}=...) must be a (lo, hi) microsecond "
                f"pair, got {value!r}"
            ) from None
        if lo < 0 or hi < lo:
            raise ValueError(
                f"FaultPlan({argument}=...) needs 0 <= lo <= hi, "
                f"got {value!r}"
            )
        return (float(lo), float(hi))

    @property
    def can_lose_messages(self) -> bool:
        """True if this plan can make channel traffic vanish.

        The VORX ack watchdog is armed only when it can (drops, faults on
        some link, a crashed node); an all-zero plan leaves the machine's
        event schedule bit-identical to no plan at all.
        """
        return (
            self.defaults.any_loss
            or any(faults.any_loss for faults in self.links.values())
            or any(faults.any_loss for *_, faults in self.site_windows)
            or bool(self.node_crashes)
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, site: str) -> LinkFaults:
        """The fault probabilities in force at ``site`` (first match wins)."""
        for pattern, faults in self.links.items():
            if fnmatchcase(site, pattern):
                return faults
        return self.defaults

    def stall_windows(self, site: str) -> list[tuple[float, float]]:
        """The ``(start, end)`` stall windows applying to ``site``."""
        return [
            (start, start + duration)
            for pattern, start, duration in self.nic_stalls
            if fnmatchcase(site, pattern)
        ]

    def window_faults(
        self, site: str
    ) -> list[tuple[float, float, LinkFaults]]:
        """The ``(start, end, faults)`` windowed overrides for ``site``,
        in declaration order (the injector picks the first active one)."""
        return [
            (start, end, faults)
            for pattern, start, end, faults in self.site_windows
            if fnmatchcase(site, pattern)
        ]

    def brownout_windows(self, site: str) -> list[tuple[float, float, float]]:
        """The ``(start, end, multiplier)`` brownouts applying to ``site``."""
        return [
            (start, end, multiplier)
            for pattern, start, end, multiplier in self.link_brownouts
            if fnmatchcase(site, pattern)
        ]

    def site_patterns(self) -> list[str]:
        """Every site-name pattern this plan references, for validation."""
        patterns = list(self.links)
        patterns.extend(pattern for pattern, *_ in self.nic_stalls)
        patterns.extend(pattern for pattern, *_ in self.site_windows)
        patterns.extend(pattern for pattern, *_ in self.link_brownouts)
        return patterns

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, system) -> "FaultInjector":
        """Attach to a system or fabric backend; returns the injector.

        ``system`` needs ``sim`` plus -- for crash wiring -- a way to find
        an endpoint by address: ``kernel_at``, a ``nodes`` list, or a
        ``fabric``/backend attach table.  A bare ``FabricBackend`` works
        too.  When the fabric enumerates its injection sites
        (:meth:`~repro.fabric.base.FabricBackend.fault_sites`), every
        site pattern in the plan is validated against them here, so a
        typo'd or wrong-topology override fails loudly instead of
        silently matching nothing.
        """
        from repro.faults.injector import FaultInjector

        sim = system.sim
        if getattr(sim, "faults", None) is not None:
            raise RuntimeError(
                "a FaultPlan is already attached to this simulator"
            )
        fabric = getattr(system, "fabric", None)
        if fabric is None and hasattr(system, "iface"):
            fabric = system  # a bare FabricBackend
        self._validate_sites(fabric)
        injector = FaultInjector(sim, self)
        sim.faults = injector
        for address, crash_time in self.node_crashes.items():
            kernel = self._kernel_for(system, fabric, address)
            sim.call_later(
                max(0.0, crash_time - sim.now), injector._crash, address,
                kernel,
            )
        return injector

    def attach_shard(self, fabric) -> "FaultInjector":
        """Attach to one shard's fabric slice of a sharded simulation.

        Crash schedules are wired only for locally-attached addresses
        (remote ones belong to some other shard's injector); site
        patterns are validated against the *full* topology by the
        orchestrator, not per shard, since each shard only sees its own
        links.  Per-site RNG streams depend on ``(seed, site)`` alone,
        so the fault schedule is shard-stable by construction.
        """
        from repro.faults.injector import FaultInjector

        sim = fabric.sim
        if getattr(sim, "faults", None) is not None:
            raise RuntimeError(
                "a FaultPlan is already attached to this simulator"
            )
        injector = FaultInjector(sim, self)
        sim.faults = injector
        local = getattr(fabric, "attachments", None) or {}
        for address, crash_time in self.node_crashes.items():
            if address not in local:
                continue
            iface = fabric.iface(address)
            shim = _EndpointShim(getattr(iface, "name", f"addr{address}"),
                                 iface)
            sim.call_later(
                max(0.0, crash_time - sim.now), injector._crash, address,
                shim,
            )
        return injector

    def _validate_sites(self, fabric) -> None:
        """Check every site pattern matches >= 1 real injection site."""
        if fabric is None:
            return
        enumerate_sites = getattr(fabric, "fault_sites", None)
        if enumerate_sites is None:
            return
        sites = enumerate_sites()
        if not sites:
            return
        for pattern in self.site_patterns():
            if any(fnmatchcase(site, pattern) for site in sites):
                continue
            sample = ", ".join(repr(site) for site in sites[:6])
            raise ValueError(
                f"FaultPlan site pattern {pattern!r} matches none of the "
                f"{len(sites)} injection sites on this "
                f"{getattr(fabric, 'topology_name', 'fabric')} fabric "
                f"(e.g. {sample}); check FabricBackend.fault_sites()"
            )

    @staticmethod
    def _kernel_for(system, fabric, address: int):
        """Endpoint lookup by address for crash wiring.

        Tries the system's kernel table, then its ``nodes`` list, then
        the fabric backend's attach table; a crash address that matches
        nothing is a configuration error and raises instead of silently
        scheduling a no-op crash.
        """
        finder = getattr(system, "kernel_at", None)
        if finder is not None:
            try:
                return finder(address)
            except KeyError:
                pass
        nodes = getattr(system, "nodes", None)
        if nodes is not None:
            for node in nodes:
                if getattr(node, "address", None) == address:
                    return node
        if fabric is not None and address in getattr(fabric, "addresses", ()):
            iface = fabric.iface(address)
            return _EndpointShim(getattr(iface, "name", f"addr{address}"),
                                 iface)
        known = list(getattr(fabric, "addresses", ())) if fabric is not None \
            else sorted(
                getattr(node, "address", -1)
                for node in (getattr(system, "nodes", None) or ())
            )
        raise ValueError(
            f"FaultPlan(node_crashes=...) address {address} matches no "
            f"endpoint on this system (known addresses: "
            f"{known[:8]}{'...' if len(known) > 8 else ''})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.defaults
        return (
            f"<FaultPlan seed={self.seed} drop={d.drop} corrupt={d.corrupt} "
            f"delay={d.delay} duplicate={d.duplicate} "
            f"overflow={self.force_fifo_overflow} "
            f"crashes={len(self.node_crashes)} stalls={len(self.nic_stalls)}>"
        )
