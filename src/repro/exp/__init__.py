"""Experiment orchestration: ``Experiment`` arms and ``RunTable`` sweeps.

The redesigned single entry point for measurements::

    from repro import Experiment, Workload, PoissonArrivals

    wl = Workload(arrivals=PoissonArrivals(rate_per_s=2000), n_requests=300)
    a = Experiment(topology="hypercube", n_nodes=64, workload=wl,
                   reps=3, seed=42).run()
    b = Experiment(topology="mesh", n_nodes=64, workload=wl,
                   reps=3, seed=42).run()
    print(a.percentiles(), a.contrast(b))

For full matrices (topologies x sizes x reps, optional chaos twins),
use :class:`RunTable`, which emits seeded ``runtable/v1`` JSONL plus a
summary table and rank-statistic contrasts.
"""

from repro.exp.experiment import (
    Contrast,
    Experiment,
    RunResult,
    Scenario,
    rep_seed,
)
from repro.exp.runtable import (
    ROW_SCHEMA,
    RunTable,
    RunTableResult,
    validate_row,
)

__all__ = [
    "Contrast",
    "Experiment",
    "RunResult",
    "RunTable",
    "RunTableResult",
    "ROW_SCHEMA",
    "Scenario",
    "rep_seed",
    "validate_row",
]
