"""The redesigned experiment-facing API: ``Experiment`` -> ``RunResult``.

One keyword-only builder is the single entry point for "run this
workload on that cluster, N times, and tell me if the arms differ"::

    from repro import Experiment, Workload, PoissonArrivals

    wl = Workload(arrivals=PoissonArrivals(rate_per_s=2000), n_requests=300)
    hypercube = Experiment(topology="hypercube", n_nodes=256,
                           workload=wl, reps=3, seed=42).run()
    mesh = Experiment(topology="mesh", n_nodes=256,
                      workload=wl, reps=3, seed=42).run()
    print(hypercube.percentiles())
    print(hypercube.contrast(mesh))   # Mann-Whitney U on the latencies

Each repetition gets a fresh simulator and fabric (unless the scenario
pins a pre-built :class:`~repro.fabric.base.FabricBackend` instance, in
which case repetitions share it and are separated by the cooldown), and
a seed derived deterministically from ``(seed, arm, rep)`` -- the same
``Experiment`` call always measures the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import TYPE_CHECKING, Optional, Union

from repro.fabric.base import FabricBackend
from repro.fabric.registry import available_topologies, create_fabric
from repro.model.costs import CostModel, DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.workload.generator import Workload, WorkloadResult
from repro.workload.stats import mann_whitney_u, percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class Scenario:
    """One experimental arm: which cluster, how big, what faults.

    ``topology`` is either a registered name (``"hypercube"``,
    ``"mesh"``, ...) or an already-built fabric instance; run-table rows
    accept both interchangeably.
    """

    topology: Union[str, FabricBackend]
    n_nodes: int
    faults: Optional["FaultPlan"] = None
    options: dict = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            if self.topology not in available_topologies():
                raise ValueError(
                    f"Scenario(topology=...) must be a FabricBackend "
                    f"instance or one of {available_topologies()}, "
                    f"got {self.topology!r}"
                )
        elif not isinstance(self.topology, FabricBackend):
            raise TypeError(
                f"Scenario(topology=...) must be a name or a "
                f"FabricBackend instance, got {self.topology!r}"
            )
        if not isinstance(self.n_nodes, int) or isinstance(
            self.n_nodes, bool
        ) or self.n_nodes < 2:
            raise ValueError(
                f"Scenario(n_nodes=...) must be an int >= 2, "
                f"got {self.n_nodes!r}"
            )

    @property
    def topology_name(self) -> str:
        if isinstance(self.topology, str):
            return self.topology
        return self.topology.topology_name

    @property
    def arm(self) -> str:
        """The arm label used in metrics, JSONL rows, and contrasts."""
        if self.label:
            return self.label
        base = f"{self.topology_name}/{self.n_nodes}"
        return base + ("+chaos" if self.faults is not None else "")


@dataclass(frozen=True)
class Contrast:
    """A two-arm Mann-Whitney comparison of request latencies."""

    arm_a: str
    arm_b: str
    n_a: int
    n_b: int
    median_a_us: float
    median_b_us: float
    u_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 two-sided significance."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        return (
            f"{self.arm_a} (median {self.median_a_us:.0f}us, n={self.n_a}) "
            f"vs {self.arm_b} (median {self.median_b_us:.0f}us, "
            f"n={self.n_b}): U={self.u_statistic:.1f}, "
            f"p={self.p_value:.4g}"
        )


class RunResult:
    """Aggregated outcome of one experiment arm across repetitions."""

    def __init__(self, scenario: Scenario, seed: int,
                 reps: list[WorkloadResult],
                 injections: Optional[list[int]] = None) -> None:
        self.scenario = scenario
        self.seed = seed
        self.reps = list(reps)
        #: Faults injected per repetition (zeros without a plan).
        self.injections: tuple[int, ...] = tuple(
            injections if injections is not None else [0] * len(self.reps)
        )
        pooled: list[float] = []
        for rep in self.reps:
            pooled.extend(rep.latencies_us)
        pooled.sort()
        #: Per-request latencies pooled over every repetition, sorted.
        self.latencies_us: tuple[float, ...] = tuple(pooled)

    @property
    def arm(self) -> str:
        return self.scenario.arm

    @property
    def offered(self) -> int:
        return sum(rep.offered for rep in self.reps)

    @property
    def completed(self) -> int:
        return sum(rep.completed for rep in self.reps)

    @property
    def failed(self) -> int:
        return sum(rep.failed for rep in self.reps)

    @property
    def failure_rate(self) -> float:
        return self.failed / self.offered if self.offered else 0.0

    @property
    def retries(self) -> int:
        """Retry resend events summed over every repetition."""
        return sum(rep.retries for rep in self.reps)

    @property
    def injected(self) -> int:
        """Faults injected, summed over every repetition."""
        return sum(self.injections)

    @property
    def throughput_per_s(self) -> float:
        """Mean of the per-repetition completion rates."""
        if not self.reps:
            return 0.0
        return sum(rep.throughput_per_s for rep in self.reps) / len(self.reps)

    def percentiles(self) -> dict[str, float]:
        """Exact pooled p50/p95/p99 latency (microseconds)."""
        if not self.latencies_us:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": percentile(self.latencies_us, 50.0),
            "p95": percentile(self.latencies_us, 95.0),
            "p99": percentile(self.latencies_us, 99.0),
        }

    def contrast(self, other: "RunResult") -> Contrast:
        """Mann-Whitney U on pooled per-request latencies vs ``other``."""
        if not isinstance(other, RunResult):
            raise TypeError(
                f"contrast() compares two RunResults, got {other!r}"
            )
        if not self.latencies_us or not other.latencies_us:
            raise ValueError(
                f"contrast() needs completed requests on both arms "
                f"({self.arm}: {len(self.latencies_us)}, "
                f"{other.arm}: {len(other.latencies_us)})"
            )
        u, p = mann_whitney_u(self.latencies_us, other.latencies_us)
        return Contrast(
            arm_a=self.arm,
            arm_b=other.arm,
            n_a=len(self.latencies_us),
            n_b=len(other.latencies_us),
            median_a_us=percentile(self.latencies_us, 50.0),
            median_b_us=percentile(other.latencies_us, 50.0),
            u_statistic=u,
            p_value=p,
        )

    def rows(self) -> list[dict]:
        """One plain-dict row per repetition (the run-table JSONL unit)."""
        rows = []
        for index, rep in enumerate(self.reps):
            pcts = rep.percentiles()
            rows.append({
                "schema": "runtable/v1",
                "arm": self.arm,
                "topology": self.scenario.topology_name,
                "n_endpoints": self.scenario.n_nodes,
                "rep": index,
                "seed": rep.seed,
                "chaos": self.scenario.faults is not None,
                "offered": rep.offered,
                "completed": rep.completed,
                "failed": rep.failed,
                "retries": rep.retries,
                "injected": self.injections[index],
                "failure_rate": round(rep.failure_rate, 6),
                "offered_rate_per_s": round(rep.offered_rate_per_s, 3),
                "throughput_per_s": round(rep.throughput_per_s, 3),
                "duration_us": round(rep.duration_us, 3),
                "p50_us": round(pcts["p50"], 3),
                "p95_us": round(pcts["p95"], 3),
                "p99_us": round(pcts["p99"], 3),
                "fingerprint": rep.fingerprint(),
            })
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pcts = self.percentiles()
        return (
            f"<RunResult {self.arm} reps={len(self.reps)} "
            f"completed={self.completed}/{self.offered} "
            f"p95={pcts['p95']:.0f}us>"
        )


def rep_seed(seed: int, arm: str, rep: int) -> str:
    """The derived seed string for repetition ``rep`` of ``arm``.

    Deterministic and collision-free across arms and repetitions; the
    run-table JSONL records it per row so any single repetition can be
    reproduced in isolation.
    """
    return f"{seed}:{arm}:{rep}"


class Experiment:
    """One arm of a study: a scenario, a workload, and repetitions.

    All arguments are keyword-only.  Pass either ``scenario=`` or the
    inline ``topology=`` / ``n_nodes=`` / ``faults=`` trio -- not both.

    Parameters
    ----------
    workload:
        The :class:`~repro.workload.generator.Workload` to offer.
    topology:
        Interconnect by registered name or as a pre-built
        :class:`~repro.fabric.base.FabricBackend` instance (the same
        convention as ``VorxSystem``/``MeglosSystem``).
    n_nodes:
        Endpoints per repetition (ignored shape options come from
        ``options``).
    scenario:
        A prepared :class:`Scenario`, mutually exclusive with the
        inline trio.
    reps:
        Independent repetitions; each gets a fresh simulator + fabric
        and a seed derived from ``(seed, arm, rep)``.
    seed:
        Root seed for the whole arm.
    cooldown_us:
        Simulated idle time appended after each repetition before its
        successor starts (only observable when repetitions share a
        pinned fabric instance, where it separates the runs in time).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` attached to each
        repetition's simulator (the chaos arm).
    costs:
        Cost model for fabric construction (default: the calibrated
        paper model).
    options:
        Extra keyword options forwarded to the fabric builder
        (``nodes_per_cluster``, ``shape``, ...).
    label:
        Override the derived arm label.
    """

    def __init__(
        self,
        *,
        workload: Workload,
        topology: Union[str, FabricBackend, None] = None,
        n_nodes: Optional[int] = None,
        scenario: Optional[Scenario] = None,
        reps: int = 3,
        seed: int = 1990,
        cooldown_us: float = 10_000.0,
        faults: Optional["FaultPlan"] = None,
        costs: Optional[CostModel] = None,
        options: Optional[dict] = None,
        label: str = "",
    ) -> None:
        if not isinstance(workload, Workload):
            raise TypeError(
                f"Experiment(workload=...) must be a Workload, "
                f"got {workload!r}"
            )
        if scenario is not None:
            if topology is not None or n_nodes is not None or (
                faults is not None or options
            ):
                raise ValueError(
                    "Experiment(): give scenario= or the inline "
                    "topology=/n_nodes=/faults=/options= form, not both"
                )
            if not isinstance(scenario, Scenario):
                raise TypeError(
                    f"Experiment(scenario=...) must be a Scenario, "
                    f"got {scenario!r}"
                )
        else:
            if topology is None:
                raise ValueError(
                    "Experiment() needs topology= (a name or a "
                    "FabricBackend instance) or scenario="
                )
            if n_nodes is None:
                if isinstance(topology, FabricBackend):
                    n_nodes = len(topology.addresses)
                else:
                    raise ValueError(
                        "Experiment(topology=<name>) also needs n_nodes="
                    )
            scenario = Scenario(
                topology=topology, n_nodes=n_nodes, faults=faults,
                options=dict(options or {}), label=label,
            )
        if not isinstance(reps, int) or isinstance(reps, bool) or reps < 1:
            raise ValueError(
                f"Experiment(reps=...) must be an int >= 1, got {reps!r}"
            )
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(
                f"Experiment(seed=...) must be an int, got {seed!r}"
            )
        if cooldown_us < 0:
            raise ValueError(
                f"Experiment(cooldown_us=...) cannot be negative, "
                f"got {cooldown_us!r}"
            )
        if costs is not None and not isinstance(costs, CostModel):
            raise TypeError(
                f"Experiment(costs=...) must be a CostModel or None, "
                f"got {costs!r}"
            )
        self.workload = workload
        self.scenario = scenario
        self.reps = reps
        self.seed = seed
        self.cooldown_us = float(cooldown_us)
        self.costs = costs or DEFAULT_COSTS

    # ------------------------------------------------------------------
    def _fabric_for_rep(self) -> FabricBackend:
        scenario = self.scenario
        if isinstance(scenario.topology, FabricBackend):
            return scenario.topology
        sim = Simulator()
        fabric = create_fabric(
            scenario.topology, sim, self.costs,
            n_endpoints=scenario.n_nodes, **dict(scenario.options),
        )
        return fabric

    def run(self) -> RunResult:
        """Run every repetition and aggregate the arm's result."""
        scenario = self.scenario
        arm = scenario.arm
        shared = isinstance(scenario.topology, FabricBackend)
        results: list[WorkloadResult] = []
        injections: list[int] = []
        for rep in range(self.reps):
            fabric = self._fabric_for_rep()
            sim = fabric.sim
            if scenario.faults is not None and sim.faults is None:
                # Passing the fabric lets crash wiring resolve raw
                # endpoints through the attach table and lets the plan
                # validate its site patterns against this topology.
                scenario.faults.attach(
                    SimpleNamespace(sim=sim, fabric=fabric)
                )
            injector = getattr(sim, "faults", None)
            before = injector.injections if injector is not None else 0
            results.append(
                self.workload.run(
                    fabric, seed=rep_seed(self.seed, arm, rep), arm=arm
                )
            )
            injections.append(
                (injector.injections - before) if injector is not None
                else 0
            )
            if self.cooldown_us > 0 and shared:
                sim.run(until=sim.now + self.cooldown_us)
        return RunResult(scenario, self.seed, results, injections)
