"""The run-table orchestrator: topologies x sizes x repetitions.

The experiment methodology the interconnect literature settled on --
and the reason PR 6's five fabric backends exist -- is a *matrix* of
configurations, each repeated with independent seeds, compared with
rank statistics rather than eyeballed means.  :class:`RunTable` builds
that matrix out of :class:`~repro.exp.experiment.Scenario` rows, runs
each cell through :class:`~repro.exp.experiment.Experiment`, and
renders three artefacts:

* **JSONL rows** (``runtable/v1``) -- one line per repetition, the
  machine-readable record downstream analysis (and CI) consumes;
* **summary table** -- per-arm percentiles, throughput, failure rate;
* **contrasts** -- pairwise Mann-Whitney U between topology arms at
  each size (plus a Kruskal-Wallis omnibus when three or more arms
  share a size).

Everything is seeded: the same ``RunTable`` call produces byte-identical
JSONL, which the CI smoke job pins by digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Optional, Sequence, Union

from repro.exp.experiment import Contrast, Experiment, RunResult, Scenario
from repro.fabric.base import FabricBackend
from repro.model.costs import CostModel
from repro.workload.generator import Workload
from repro.workload.stats import kruskal_wallis

#: JSONL schema tag; every row carries it.
ROW_SCHEMA = "runtable/v1"

#: Required keys (and the types a validator should accept) of one row.
ROW_FIELDS: dict[str, tuple] = {
    "schema": (str,),
    "arm": (str,),
    "topology": (str,),
    "n_endpoints": (int,),
    "rep": (int,),
    "seed": (str,),
    "chaos": (bool,),
    "offered": (int,),
    "completed": (int,),
    "failed": (int,),
    "retries": (int,),
    "injected": (int,),
    "failure_rate": (int, float),
    "offered_rate_per_s": (int, float),
    "throughput_per_s": (int, float),
    "duration_us": (int, float),
    "p50_us": (int, float),
    "p95_us": (int, float),
    "p99_us": (int, float),
    "fingerprint": (str,),
}


def validate_row(row: dict, where: str = "row") -> None:
    """Raise ``ValueError`` unless ``row`` matches the runtable/v1 schema."""
    if not isinstance(row, dict):
        raise ValueError(f"{where}: not a JSON object")
    if row.get("schema") != ROW_SCHEMA:
        raise ValueError(
            f"{where}: schema is {row.get('schema')!r}, want {ROW_SCHEMA!r}"
        )
    for key, types in ROW_FIELDS.items():
        if key not in row:
            raise ValueError(f"{where}: missing field {key!r}")
        value = row[key]
        # bool is an int subclass; keep numeric fields strictly non-bool.
        bad = (
            not isinstance(value, bool) if types == (bool,)
            else isinstance(value, bool) or not isinstance(value, types)
        )
        if bad:
            raise ValueError(
                f"{where}: field {key!r} has type "
                f"{type(value).__name__}, want "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if row["offered"] < row["completed"]:
        raise ValueError(
            f"{where}: completed ({row['completed']}) exceeds offered "
            f"({row['offered']})"
        )
    if not 0.0 <= row["failure_rate"] <= 1.0:
        raise ValueError(
            f"{where}: failure_rate {row['failure_rate']} outside [0, 1]"
        )


class RunTableResult:
    """Everything a run-table sweep produced."""

    def __init__(self, results: list[RunResult]) -> None:
        #: One aggregated :class:`RunResult` per arm, in run order.
        self.results = list(results)

    def arm(self, name: str) -> RunResult:
        for result in self.results:
            if result.arm == name:
                return result
        raise KeyError(
            f"no arm {name!r}; have {[r.arm for r in self.results]}"
        )

    # -- JSONL ------------------------------------------------------------
    def rows(self) -> list[dict]:
        return [row for result in self.results for row in result.rows()]

    def jsonl(self) -> list[str]:
        """Canonical JSONL lines (sorted keys, compact separators)."""
        return [
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in self.rows()
        ]

    def digest(self) -> str:
        """sha256 over the canonical JSONL -- the determinism anchor."""
        digest = hashlib.sha256()
        for line in self.jsonl():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def write_jsonl(self, path) -> int:
        lines = self.jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    # -- human-readable summary ------------------------------------------
    def summary(self) -> str:
        """A fixed-width per-arm table (percentiles in microseconds)."""
        header = (
            f"{'arm':<24} {'reps':>4} {'offered':>8} {'fail%':>6} "
            f"{'tput/s':>9} {'p50us':>8} {'p95us':>8} {'p99us':>8}"
        )
        lines = [header, "-" * len(header)]
        for result in self.results:
            pcts = result.percentiles()
            lines.append(
                f"{result.arm:<24} {len(result.reps):>4} "
                f"{result.offered:>8} "
                f"{100.0 * result.failure_rate:>6.2f} "
                f"{result.throughput_per_s:>9.1f} "
                f"{pcts['p50']:>8.1f} {pcts['p95']:>8.1f} "
                f"{pcts['p99']:>8.1f}"
            )
        return "\n".join(lines)

    # -- statistics -------------------------------------------------------
    def contrasts(self) -> list[Contrast]:
        """Pairwise Mann-Whitney contrasts between topology arms.

        Arms are compared within a group sharing the same size and
        chaos flag (comparing a 64-endpoint arm against a 256-endpoint
        arm answers no question the table asked).
        """
        groups: dict[tuple, list[RunResult]] = {}
        for result in self.results:
            key = (result.scenario.n_nodes,
                   result.scenario.faults is not None)
            groups.setdefault(key, []).append(result)
        contrasts: list[Contrast] = []
        for key in sorted(groups):
            members = [r for r in groups[key] if r.latencies_us]
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    contrasts.append(a.contrast(b))
        return contrasts

    def omnibus(self) -> list[dict]:
        """Kruskal-Wallis across each >= 3-arm size group."""
        groups: dict[tuple, list[RunResult]] = {}
        for result in self.results:
            key = (result.scenario.n_nodes,
                   result.scenario.faults is not None)
            groups.setdefault(key, []).append(result)
        out = []
        for key in sorted(groups):
            members = [r for r in groups[key] if r.latencies_us]
            if len(members) < 3:
                continue
            h, p = kruskal_wallis([r.latencies_us for r in members])
            out.append({
                "n_endpoints": key[0],
                "chaos": key[1],
                "arms": [r.arm for r in members],
                "h_statistic": round(h, 4),
                "p_value": p,
            })
        return out


class RunTable:
    """A seeded sweep: topologies x sizes x repetitions (x chaos).

    All arguments are keyword-only.

    Parameters
    ----------
    topologies:
        Topology names and/or pre-built fabric instances; each becomes
        one arm per size (instances ignore ``sizes`` and use their own
        endpoint count).
    sizes:
        Endpoint counts to build each named topology at.
    workload:
        The :class:`~repro.workload.generator.Workload` offered to every
        cell.
    reps:
        Repetitions per cell, independently seeded.
    seed:
        Root seed; every cell derives its streams from
        ``(seed, arm, rep)``.
    cooldown_us:
        Idle separation between repetitions on shared fabric instances.
    chaos:
        Optional :class:`~repro.faults.plan.FaultPlan`; when given,
        every row also runs a ``+chaos`` twin with the plan attached.
    costs:
        Cost model for fabric construction.
    options:
        Builder options applied to every named-topology arm.
    scenarios:
        Prepared :class:`Scenario` rows to run verbatim, mutually
        exclusive with ``topologies``/``sizes``/``chaos``/``options``
        (the chaos campaign driver builds its matrix this way).
    """

    def __init__(
        self,
        *,
        topologies: Optional[Sequence[Union[str, FabricBackend]]] = None,
        sizes: Sequence[int] = (64,),
        workload: Workload,
        reps: int = 3,
        seed: int = 1990,
        cooldown_us: float = 10_000.0,
        chaos=None,
        costs: Optional[CostModel] = None,
        options: Optional[dict] = None,
        scenarios: Optional[Sequence[Scenario]] = None,
    ) -> None:
        if scenarios is not None:
            if topologies is not None or chaos is not None or options:
                raise ValueError(
                    "RunTable(): give scenarios= or the "
                    "topologies=/sizes=/chaos=/options= form, not both"
                )
            if not scenarios:
                raise ValueError("RunTable(scenarios=...) cannot be empty")
            for scenario in scenarios:
                if not isinstance(scenario, Scenario):
                    raise TypeError(
                        f"RunTable(scenarios=...) entries must be "
                        f"Scenario, got {scenario!r}"
                    )
            self.workload = workload
            self.reps = reps
            self.seed = seed
            self.cooldown_us = cooldown_us
            self.costs = costs
            self.scenarios = list(scenarios)
            return
        if not topologies:
            raise ValueError("RunTable(topologies=...) cannot be empty")
        if not sizes:
            raise ValueError("RunTable(sizes=...) cannot be empty")
        if chaos is not None and not hasattr(chaos, "attach"):
            raise TypeError(
                f"RunTable(chaos=...) must be a FaultPlan or None, "
                f"got {chaos!r}"
            )
        self.workload = workload
        self.reps = reps
        self.seed = seed
        self.cooldown_us = cooldown_us
        self.costs = costs
        self.scenarios = []
        for topology in topologies:
            arm_sizes: Sequence[int]
            if isinstance(topology, FabricBackend):
                arm_sizes = (len(topology.addresses),)
            else:
                arm_sizes = sizes
            for size in arm_sizes:
                self.scenarios.append(Scenario(
                    topology=topology, n_nodes=size,
                    options=dict(options or {}),
                ))
                if chaos is not None:
                    self.scenarios.append(Scenario(
                        topology=topology, n_nodes=size, faults=chaos,
                        options=dict(options or {}),
                    ))

    def run(
        self, log: Optional[Callable[[str], None]] = None
    ) -> RunTableResult:
        """Run every cell; ``log`` (e.g. ``print``) narrates progress."""
        results: list[RunResult] = []
        for scenario in self.scenarios:
            if log is not None:
                log(f"runtable: {scenario.arm} x{self.reps} "
                    f"({self.workload.describe()})")
            experiment = Experiment(
                scenario=scenario, workload=self.workload, reps=self.reps,
                seed=self.seed, cooldown_us=self.cooldown_us,
                costs=self.costs,
            )
            results.append(experiment.run())
        return RunTableResult(results)
