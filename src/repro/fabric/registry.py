"""Backend registry: build an interconnect by topology name.

``create_fabric("hypercube", sim, costs, n_endpoints=1024)`` replaces
hard-wiring one builder into each system class; :class:`VorxSystem
<repro.vorx.system.VorxSystem>` and :class:`MeglosSystem
<repro.meglos.kernel.MeglosSystem>` both resolve their interconnect
here.  Builders are registered as callables so the registry imports
nothing heavy at module load (and cannot create an import cycle with
the backend modules, which import :mod:`repro.fabric.base`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.base import FabricBackend
    from repro.model.costs import CostModel
    from repro.sim.engine import Simulator

#: topology name -> builder(sim, costs, n_endpoints, **options)
_BACKENDS: Dict[str, Callable[..., "FabricBackend"]] = {}


def register_backend(
    name: str, builder: Callable[..., "FabricBackend"]
) -> None:
    """Register (or override) a topology builder under ``name``."""
    _BACKENDS[name] = builder


def available_topologies() -> list[str]:
    """Registered topology names, sorted."""
    return sorted(_BACKENDS)


def create_fabric(
    topology,
    sim: "Simulator",
    costs: "CostModel",
    n_endpoints: int,
    **options,
) -> "FabricBackend":
    """Build the named interconnect with ``n_endpoints`` endpoints.

    Each builder accepts topology-specific keyword ``options`` (for
    example ``nodes_per_cluster`` for the cluster-based fabrics or
    ``shape`` for HyperX and the mesh) and raises ``ValueError`` with
    the capacity arithmetic spelled out when ``n_endpoints`` does not
    fit.

    An already-built :class:`~repro.fabric.base.FabricBackend` instance
    passes through unchanged (so callers holding "name or instance" can
    resolve both through one function) -- provided it is big enough for
    ``n_endpoints`` and tied to the same ``sim``.
    """
    from repro.fabric.base import FabricBackend

    shards = options.pop("shards", None)
    if isinstance(topology, FabricBackend):
        if topology.sim is not sim:
            raise ValueError(
                "create_fabric() got a built fabric tied to a different "
                "simulator than sim="
            )
        if len(topology.addresses) < n_endpoints:
            raise ValueError(
                f"built fabric has {len(topology.addresses)} endpoints, "
                f"need {n_endpoints}"
            )
        return _with_partition(topology, shards)
    try:
        builder = _BACKENDS[topology]
    except KeyError:
        raise ValueError(
            f"unknown fabric topology {topology!r}; "
            f"available: {', '.join(available_topologies())}"
        ) from None
    return _with_partition(builder(sim, costs, n_endpoints, **options), shards)


def _with_partition(backend: "FabricBackend", shards) -> "FabricBackend":
    """Attach a shard partition (``shards=N``) to a built backend.

    The partition marks the fabric for conservative-parallel execution
    (:class:`repro.sim.parallel.ShardedSimulator`) and makes shard-aware
    consumers -- router-hub placement in :mod:`repro.workload` -- spread
    their work across shard boundaries.
    """
    if shards is not None:
        from repro.fabric.partition import partition_fabric

        backend.partition = partition_fabric(backend, shards)
    return backend


# -- built-in topologies ----------------------------------------------------
def _build_star(sim, costs, n_endpoints, **options) -> "FabricBackend":
    from repro.hpc.topology import build_single_cluster

    return build_single_cluster(sim, costs, n_endpoints, **options)


def _build_hypercube(sim, costs, n_endpoints, **options) -> "FabricBackend":
    from repro.hpc.topology import build_hypercube

    nodes_per_cluster = options.pop("nodes_per_cluster", 4)
    n_clusters = options.pop(
        "n_clusters", -(-n_endpoints // nodes_per_cluster)
    )
    return build_hypercube(
        sim, costs, n_clusters, nodes_per_cluster,
        n_endpoints=n_endpoints, **options,
    )


def _square_shape(n_endpoints: int, nodes_per_cluster: int) -> tuple[int, int]:
    """Smallest near-square cluster grid holding ``n_endpoints``."""
    n_clusters = -(-n_endpoints // nodes_per_cluster)
    width = 1
    while width * width < n_clusters:
        width += 1
    height = -(-n_clusters // width)
    return (width, height)


def _build_hyperx(sim, costs, n_endpoints, **options) -> "FabricBackend":
    from repro.hpc.topology import build_hyperx

    nodes_per_cluster = options.pop("nodes_per_cluster", 4)
    shape = options.pop("shape", None) or _square_shape(
        n_endpoints, nodes_per_cluster
    )
    return build_hyperx(
        sim, costs, shape, nodes_per_cluster,
        n_endpoints=n_endpoints, **options,
    )


def _build_mesh(sim, costs, n_endpoints, **options) -> "FabricBackend":
    from repro.hpc.topology import build_mesh2d

    nodes_per_cluster = options.pop("nodes_per_cluster", 4)
    shape = options.pop("shape", None) or _square_shape(
        n_endpoints, nodes_per_cluster
    )
    return build_mesh2d(
        sim, costs, shape, nodes_per_cluster,
        n_endpoints=n_endpoints, **options,
    )


def _build_snet(sim, costs, n_endpoints, **options) -> "FabricBackend":
    from repro.snet.fabric import SNetFabric

    return SNetFabric(sim, costs, n_endpoints, **options)


register_backend("star", _build_star)
register_backend("hypercube", _build_hypercube)
register_backend("hyperx", _build_hyperx)
register_backend("mesh", _build_mesh)
register_backend("snet", _build_snet)
