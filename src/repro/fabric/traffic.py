"""Synthetic traffic drivers that run over any :class:`FabricBackend`.

Two patterns the interconnect literature leans on:

* :func:`run_all_pairs` -- every endpoint exchanges messages with every
  other (or a deterministic bounded partner set at large scale).  The
  uniform load that exposes a topology's *average* hop count and link
  sharing.
* :func:`run_hot_spot` -- every endpoint hammers one destination.  The
  adversarial load that exposes a fabric's flow-control behaviour:
  hardware credits make senders stall (HPC, Section 2's "blocked
  messages block others" tree saturation); a bus fifo rejects and
  forces software recovery (S/NET).

Both return a :class:`TrafficResult` whose :attr:`~TrafficResult.digest`
covers only what the *application* observes -- the sorted set of
``(src, dst, size, payload)`` deliveries -- so the same traffic on two
different topologies yields the same digest (the backend-parity
property).  :meth:`TrafficResult.fingerprint` additionally folds in the
schedule-sensitive outcomes (finish time, hop counts) for determinism
goldens.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hpc.message import MessageKind, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.base import FabricBackend


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one traffic drive."""

    #: Messages injected / delivered whole (equal unless the drive hung).
    sent: int
    delivered: int
    #: Payload bytes delivered end-to-end.
    payload_bytes: int
    #: Simulated time from first injection to last delivery.
    duration_us: float
    #: Link traversals per delivered message (bus tenures on a bus).
    avg_hops: float
    max_hops: int
    #: sha256 over the sorted delivered ``(src, dst, size, payload)``
    #: records: topology-independent (the backend-parity digest).
    digest: str

    def fingerprint(self) -> str:
        """Schedule-sensitive digest for determinism goldens."""
        tail = (
            f"|t={self.duration_us!r}|hops={self.avg_hops!r}"
            f"|max={self.max_hops}|n={self.delivered}"
        )
        return hashlib.sha256(
            (self.digest + tail).encode("utf-8")
        ).hexdigest()


def _partner_offsets(n: int, partners: int) -> list[int]:
    """Deterministic destination offsets spread across the address ring.

    Spacing the offsets evenly (rather than taking ring neighbours)
    makes the bounded drive cross many dimensions of a hypercube/mesh
    instead of measuring only nearest-neighbour routes.
    """
    if partners >= n - 1:
        return list(range(1, n))
    step = max(1, (n - 1) // partners)
    offsets = []
    for j in range(partners):
        offset = (1 + j * step) % n
        if offset and offset not in offsets:
            offsets.append(offset)
    return offsets


def _digest(records: list) -> str:
    digest = hashlib.sha256()
    for record in sorted(records, key=repr):
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _drive(
    backend: "FabricBackend",
    plan: dict[int, list[int]],
    size: int,
) -> TrafficResult:
    """Run one traffic plan (src -> destination list) to completion."""
    sim = backend.sim
    expected: dict[int, int] = {}
    for src, dsts in plan.items():
        for dst in dsts:
            expected[dst] = expected.get(dst, 0) + 1
    records: list = []
    hops: list[int] = []

    def receiver(address: int, count: int):
        for _ in range(count):
            packet = yield from backend.recv(address)
            records.append((packet.src, packet.dst, packet.size, packet.payload))
            hops.append(packet.hops)

    def sender(src: int, dsts: list[int]):
        for dst in dsts:
            packet = Packet(
                src=src, dst=dst, size=size, kind=MessageKind.USER_OBJECT,
                payload=f"{src}->{dst}",
            )
            yield from backend.send(src, packet)

    # Receivers first, then senders, both in address order: the spawn
    # order is part of the deterministic schedule the goldens pin.
    for address, count in sorted(expected.items()):
        sim.process(receiver(address, count))
    sent = 0
    for src in sorted(plan):
        dsts = plan[src]
        if dsts:
            sim.process(sender(src, dsts))
            sent += len(dsts)
    start = sim.now
    sim.run()
    delivered = len(records)
    return TrafficResult(
        sent=sent,
        delivered=delivered,
        payload_bytes=sum(record[2] for record in records),
        duration_us=sim.now - start,
        avg_hops=(sum(hops) / delivered) if delivered else 0.0,
        max_hops=max(hops, default=0),
        digest=_digest(records),
    )


def run_all_pairs(
    backend: "FabricBackend",
    *,
    size: int = 64,
    partners: Optional[int] = None,
) -> TrafficResult:
    """All-pairs traffic: every endpoint sends to every other.

    ``partners`` bounds each sender's destination set (deterministically
    spread around the address ring) so the drive stays tractable at
    1000+ endpoints, where full all-pairs would be ~10^6 messages.
    """
    addresses = backend.addresses
    n = len(addresses)
    if n < 2:
        raise ValueError(f"all-pairs needs at least 2 endpoints, got {n}")
    offsets = _partner_offsets(n, partners if partners is not None else n - 1)
    plan = {
        addresses[i]: [addresses[(i + offset) % n] for offset in offsets]
        for i in range(n)
    }
    return _drive(backend, plan, size)


def run_hot_spot(
    backend: "FabricBackend",
    *,
    size: int = 64,
    messages_per_sender: int = 4,
    hot: Optional[int] = None,
) -> TrafficResult:
    """Hot-spot traffic: every endpoint sends to one destination."""
    addresses = backend.addresses
    if len(addresses) < 2:
        raise ValueError(
            f"hot-spot needs at least 2 endpoints, got {len(addresses)}"
        )
    hot_address = addresses[0] if hot is None else hot
    if hot_address not in addresses:
        raise ValueError(f"hot endpoint {hot_address} is not on the fabric")
    plan = {
        address: [hot_address] * messages_per_sender
        for address in addresses
        if address != hot_address
    }
    return _drive(backend, plan, size)
