"""Interconnect abstraction: backends, registry, and traffic drivers.

See :mod:`repro.fabric.base` for the :class:`FabricBackend` contract,
:mod:`repro.fabric.registry` for name-based construction, and
:mod:`repro.fabric.traffic` for the all-pairs / hot-spot drivers.

Quick start::

    from repro.fabric import create_fabric, run_all_pairs
    from repro.model import DEFAULT_COSTS
    from repro.sim import Simulator

    sim = Simulator()
    fabric = create_fabric("hypercube", sim, DEFAULT_COSTS, n_endpoints=1024)
    result = run_all_pairs(fabric, partners=4)
    print(result.avg_hops, fabric.contention())
"""

from repro.fabric.base import FabricBackend
from repro.fabric.partition import (
    FabricPartition,
    ShardFabric,
    TopologySpec,
    boundary_cut_sites,
    partition_fabric,
    partition_spec,
)
from repro.fabric.registry import (
    available_topologies,
    create_fabric,
    register_backend,
)
from repro.fabric.traffic import TrafficResult, run_all_pairs, run_hot_spot

__all__ = [
    "FabricBackend",
    "FabricPartition",
    "ShardFabric",
    "TopologySpec",
    "available_topologies",
    "boundary_cut_sites",
    "create_fabric",
    "partition_fabric",
    "partition_spec",
    "register_backend",
    "TrafficResult",
    "run_all_pairs",
    "run_hot_spot",
]
