"""The interconnect abstraction: one interface, many topologies.

The paper's systems ran on two very different interconnects -- the
S/NET shared bus (Meglos, Section 2) and the HPC self-routing star /
incomplete-hypercube fabric (Sections 1-2) -- and the evolution between
them is the paper's central story.  :class:`FabricBackend` captures what
every interconnect must provide so systems and traffic drivers can be
written once and run over any of them:

* **endpoint management** -- enumerate addresses, look up the raw NIC;
* **routing introspection** -- reachability and static hop counts, with
  clear diagnostics for unattached or unknown endpoints;
* **uniform send/recv** -- generator-based, hiding the difference
  between hardware flow control (HPC: a send blocks until a downstream
  whole-message buffer is free, nothing is ever lost) and software
  recovery (S/NET: a send may be rejected by a full fifo and must be
  retransmitted);
* **contention accounting** -- per-hop flow-control counters in a
  uniform shape, so experiments can compare *how* each fabric degrades
  under load.

Concrete backends: :class:`repro.hpc.topology.Fabric` (star, hypercube,
HyperX, 2D mesh -- anything wired from clusters and links) and
:class:`repro.snet.fabric.SNetFabric` (the shared bus).  Instantiate by
name via :func:`repro.fabric.create_fabric`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpc.message import Packet
    from repro.model.costs import CostModel
    from repro.sim.engine import Simulator


class FabricBackend(ABC):
    """Abstract interconnect: endpoints, routes, delivery, contention.

    Every backend carries ``sim`` and ``costs`` attributes and a
    ``topology_name`` identifying how it was built (``"star"``,
    ``"hypercube"``, ``"hyperx"``, ``"mesh"``, ``"snet"``, or
    ``"custom"`` for hand-wired fabrics).
    """

    sim: "Simulator"
    costs: "CostModel"
    topology_name: str = "custom"
    #: Set by ``create_fabric(..., shards=N)``: the cluster-to-shard
    #: assignment (:class:`repro.fabric.partition.FabricPartition`) a
    #: conservative-parallel run would use.  ``None`` on unpartitioned
    #: fabrics; shard-aware consumers (workload placement) test this.
    partition = None

    # -- endpoints ---------------------------------------------------------
    @property
    @abstractmethod
    def addresses(self) -> list[int]:
        """Sorted addresses of every usable (attached) endpoint."""

    @abstractmethod
    def iface(self, address: int) -> Any:
        """The raw NIC at ``address`` (backend-specific type)."""

    def fault_sites(self) -> list[str]:
        """Sorted names of every fault-injection site on this backend.

        A "site" is a name the transport hooks pass to the
        :class:`~repro.faults.injector.FaultInjector` -- link names on a
        cluster fabric, the bus and NIC names on S/NET.
        ``FaultPlan.attach`` validates per-site override patterns against
        this list so a pattern written for the wrong topology fails
        loudly.  Backends that cannot enumerate their sites return ``[]``
        (validation is then skipped).
        """
        return []

    # -- routing -----------------------------------------------------------
    @abstractmethod
    def reachable(self, src: int, dst: int) -> bool:
        """True if the fabric can carry a packet from ``src`` to ``dst``.

        Raises ``ValueError`` with a diagnostic (rather than failing deep
        in routing internals) if either endpoint does not exist or was
        never attached.
        """

    @abstractmethod
    def route_hops(self, src: int, dst: int) -> int:
        """Link traversals (bus tenures for a bus) on the ``src``->``dst``
        route.  Static: reads the routing tables, moves no packet."""

    # -- delivery ----------------------------------------------------------
    @abstractmethod
    def send(self, src: int, packet: "Packet") -> Generator:
        """Generator: inject ``packet`` at endpoint ``src``.

        Completes once the fabric has durably accepted the message --
        retrying internally where the hardware can reject (the S/NET
        fifo-full signal), so callers never see a failed send.
        """

    @abstractmethod
    def recv(self, address: int) -> Generator:
        """Generator: return the next whole packet delivered to
        ``address``.  Partial messages (a bus fifo overflow) are
        discarded inside the backend, never surfaced."""

    # -- accounting --------------------------------------------------------
    @abstractmethod
    def stats(self) -> dict:
        """Aggregate fabric statistics (shape, endpoints, traffic)."""

    @abstractmethod
    def contention(self) -> dict:
        """Flow-control pressure in a uniform shape.

        Keys every backend provides:

        ``mode``
            ``"hardware-credits"`` (HPC: senders stall on buffer
            reservations, nothing is lost) or ``"software-recovery"``
            (S/NET: full fifos reject, software retransmits).
        ``reserve_stalls`` / ``reserve_stall_us``
            Count of and time spent in hardware flow-control stalls.
        ``rejections`` / ``retries``
            Messages refused by a receiver and software retransmissions.
        """
