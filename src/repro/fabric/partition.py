"""Topology partitioning for conservative-parallel execution.

:mod:`repro.sim.parallel` runs one :class:`~repro.sim.engine.Simulator`
per *shard* -- a block of clusters plus the endpoints attached to them
-- and synchronizes shards only at cross-shard link boundaries.  This
module supplies everything below the synchronization protocol:

* :class:`TopologySpec` -- a picklable, simulator-free description of a
  wired :class:`~repro.hpc.topology.Fabric` (cluster port counts, the
  exact cluster-to-cluster wire list, endpoint attachments).  Worker
  processes receive the spec and rebuild only their own slice; no live
  simulator objects ever cross a process boundary.
* :func:`partition_spec` / :func:`partition_fabric` -- assign clusters
  to shards (contiguous balanced blocks, so hypercube shards are
  subcubes), collect the cross-shard *boundary links*, and derive the
  conservative **lookahead**: the minimum latency any message needs to
  cross a boundary, ``hpc_wire_time(0) + hpc_hop_latency``.
* :class:`ShardFabric` -- a :class:`~repro.hpc.topology.Fabric` holding
  only the local clusters and endpoints, with every cross-shard wire
  replaced by a :class:`BoundaryLink`.  Routing tables are computed
  with the same BFS (:func:`~repro.hpc.topology.first_hop_ports`) over
  the *full* cluster graph, so routes -- and therefore hop counts --
  are identical to the unsharded fabric.
* :class:`BoundaryLink` -- one direction of a fibre whose far end lives
  on another shard.  It serializes exactly like a real
  :class:`~repro.hpc.link.Link` (FIFO, one message per wire time) but
  *captures* the outbound message into the shard's outbox at pickup
  time, stamped with its arrival time ``pickup + wire``.  Capturing at
  pickup is what makes the lookahead sound: every message a shard emits
  while running a window starting at ``T`` arrives no earlier than
  ``T + lookahead``, so a neighbour may safely advance that far.

The one relaxation versus the unsharded fabric: a boundary link does
not wait for a *remote* buffer credit before transmitting -- the
receiving shard's injector reserves the buffer on arrival instead.
Delivered traffic is identical (the backend-parity digest matches the
single-simulator run); only the timing skews, boundedly, which is why
schedule goldens for sharded runs are pinned per shard count rather
than shared with the unsharded golden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hpc.cluster import Cluster
from repro.hpc.message import MessageKind, Packet
from repro.hpc.nic import HPCInterface
from repro.hpc.topology import Fabric, first_hop_ports
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.model.costs import CostModel
    from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# Picklable topology description
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """A simulator-free description of a wired cluster fabric."""

    topology_name: str
    #: Port count per cluster, indexed by cluster id.
    cluster_ports: tuple[int, ...]
    #: Every cluster-to-cluster wire as ``(a, a_port, b, b_port)``.
    links: tuple[tuple[int, int, int, int], ...]
    #: Every endpoint as ``(address, cluster, port, name)``.
    attachments: tuple[tuple[int, int, int, str], ...]

    @classmethod
    def of(cls, fabric: Fabric) -> "TopologySpec":
        """Extract the spec from a built :class:`Fabric`."""
        return cls(
            topology_name=fabric.topology_name,
            cluster_ports=tuple(c.n_ports for c in fabric.clusters),
            links=tuple(fabric.cluster_links),
            attachments=tuple(
                (address, cid, port, fabric.interfaces[address].name)
                for address, (cid, port) in sorted(fabric.attachments.items())
            ),
        )

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_ports)

    @property
    def addresses(self) -> list[int]:
        """Sorted endpoint addresses (the full fabric's address list)."""
        return sorted(entry[0] for entry in self.attachments)

    def adjacency(self) -> list[list[tuple[int, int]]]:
        """``adjacency[c] = [(port, neighbour)]`` in port order.

        Built exactly like :meth:`Fabric.build_routes` builds its
        adjacency (directed entries sorted by ``(cluster, port)``), so
        :func:`~repro.hpc.topology.first_hop_ports` over this structure
        reproduces the unsharded routes bit-for-bit.
        """
        directed: list[tuple[int, int, int]] = []
        for a, a_port, b, b_port in self.links:
            directed.append((a, a_port, b))
            directed.append((b, b_port, a))
        adjacency: list[list[tuple[int, int]]] = [
            [] for _ in range(self.n_clusters)
        ]
        for cid, port, neighbour in sorted(directed):
            adjacency[cid].append((port, neighbour))
        return adjacency


# ---------------------------------------------------------------------------
# Partition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FabricPartition:
    """A cluster-to-shard assignment plus its boundary structure."""

    n_shards: int
    #: Shard id per cluster id.
    shard_of_cluster: tuple[int, ...]
    #: Directed cross-shard wires ``(cid, port, peer_cid, peer_port)``;
    #: contains both directions of every boundary fibre.
    boundary_links: frozenset[tuple[int, int, int, int]]
    #: Minimum latency between neighbouring shard pairs, as sorted
    #: ``(shard_a, shard_b, latency_us)`` triples with ``a < b``.
    pair_lookahead: tuple[tuple[int, int, float], ...]
    #: Global minimum cross-shard latency (``inf`` with no boundary).
    lookahead_us: float

    def shard_of_address(self, spec: TopologySpec) -> dict[int, int]:
        """Endpoint address -> owning shard."""
        return {
            address: self.shard_of_cluster[cid]
            for address, cid, _port, _name in spec.attachments
        }

    def neighbours(self) -> dict[int, list[int]]:
        """Shard -> sorted neighbouring shards (boundary-adjacent)."""
        out: dict[int, set[int]] = {s: set() for s in range(self.n_shards)}
        for a, b, _latency in self.pair_lookahead:
            out[a].add(b)
            out[b].add(a)
        return {s: sorted(peers) for s, peers in out.items()}

    def pair_lookahead_map(self) -> dict[tuple[int, int], float]:
        """``(shard_a, shard_b)`` (both orders) -> minimum latency."""
        out: dict[tuple[int, int], float] = {}
        for a, b, latency in self.pair_lookahead:
            out[(a, b)] = latency
            out[(b, a)] = latency
        return out


def _link_latency_us(costs: "CostModel") -> float:
    """Minimum in-flight latency of one link traversal.

    A boundary message captured at pickup arrives ``wire_time(size) +
    hop_latency`` later; the minimum over sizes is at ``size == 0``.
    """
    return costs.hpc_wire_time(0) + costs.hpc_hop_latency


def partition_spec(
    spec: TopologySpec, n_shards: int, costs: "CostModel"
) -> FabricPartition:
    """Assign clusters to ``n_shards`` contiguous balanced blocks.

    Contiguous blocks keep hypercube shards as subcubes (dimension-
    ordered routing then crosses shard boundaries late) and mesh/HyperX
    shards as lattice bands.  Raises ``ValueError`` when ``n_shards``
    exceeds the cluster count -- a shard must own at least one cluster.
    """
    n = spec.n_clusters
    if not 1 <= n_shards <= n:
        raise ValueError(
            f"need 1..{n} shards for {n} clusters, got {n_shards}"
        )
    base, extra = divmod(n, n_shards)
    shard_of: list[int] = []
    for shard in range(n_shards):
        shard_of.extend([shard] * (base + (1 if shard < extra else 0)))

    latency = _link_latency_us(costs)
    boundary: set[tuple[int, int, int, int]] = set()
    pair_min: dict[tuple[int, int], float] = {}
    for a, a_port, b, b_port in spec.links:
        sa, sb = shard_of[a], shard_of[b]
        if sa == sb:
            continue
        boundary.add((a, a_port, b, b_port))
        boundary.add((b, b_port, a, a_port))
        key = (min(sa, sb), max(sa, sb))
        if latency < pair_min.get(key, float("inf")):
            pair_min[key] = latency
    return FabricPartition(
        n_shards=n_shards,
        shard_of_cluster=tuple(shard_of),
        boundary_links=frozenset(boundary),
        pair_lookahead=tuple(
            (a, b, pair_min[(a, b)]) for a, b in sorted(pair_min)
        ),
        lookahead_us=min(pair_min.values(), default=float("inf")),
    )


def boundary_cut_sites(fabric: Fabric, clusters) -> list[str]:
    """Directed link-site names crossing the boundary of a cluster block.

    ``clusters`` is any iterable of cluster ids; the result names both
    directions of every cluster-to-cluster wire with exactly one end in
    the block -- the set a :class:`~repro.faults.plan.FaultPlan` site
    window must drop to partition the block off the fabric.  Endpoint
    entry/exit links are untouched (they never cross cluster
    boundaries), so traffic *within* the block still flows.
    """
    block = set(clusters)
    unknown = block - set(range(len(fabric.clusters)))
    if unknown:
        raise ValueError(
            f"boundary_cut_sites: cluster ids {sorted(unknown)} do not "
            f"exist on this {len(fabric.clusters)}-cluster fabric"
        )
    sites = []
    for a, a_port, b, b_port in fabric.cluster_links:
        if (a in block) != (b in block):
            sites.append(f"c{a}.p{a_port}->c{b}")
            sites.append(f"c{b}.p{b_port}->c{a}")
    return sorted(sites)


def partition_fabric(fabric: Fabric, n_shards: int) -> FabricPartition:
    """Partition a built fabric (see :func:`partition_spec`)."""
    if not isinstance(fabric, Fabric):
        raise ValueError(
            f"sharding needs a cluster fabric, got "
            f"{type(fabric).__name__} ({fabric.topology_name}); the "
            f"bus backends have no cluster structure to partition"
        )
    return partition_spec(TopologySpec.of(fabric), n_shards, fabric.costs)


# ---------------------------------------------------------------------------
# Packet codec: compact tuples across the process boundary
# ---------------------------------------------------------------------------
def encode_packet(packet: Packet, hops: int) -> tuple:
    """Flatten a packet to a picklable tuple (``seq`` excluded).

    ``seq`` is a per-process monotone id used only for tracing; it is
    regenerated on decode so it never has to be coordinated across
    workers.  ``payload`` must itself be picklable -- true for every
    traffic driver and workload in the repository.
    """
    return (
        packet.src, packet.dst, packet.size, packet.kind.value,
        packet.channel, packet.src_channel, packet.payload, packet.xfer,
        packet.batched, packet.corrupted, hops, packet.sent_at,
    )


def decode_packet(data: tuple) -> Packet:
    """Rebuild a packet captured by :func:`encode_packet`."""
    packet = Packet(
        src=data[0], dst=data[1], size=data[2],
        kind=MessageKind(data[3]), channel=data[4], src_channel=data[5],
        payload=data[6], xfer=data[7], batched=data[8], corrupted=data[9],
    )
    packet.hops = data[10]
    packet.sent_at = data[11]
    return packet


# ---------------------------------------------------------------------------
# Boundary links
# ---------------------------------------------------------------------------
class BoundaryLink:
    """One direction of a fibre whose far end lives on another shard.

    Mirrors :class:`~repro.hpc.link.Link`'s contract (FIFO requests,
    ``send`` returns an event that fires when the sender's buffer may be
    freed, one wire time of serialization per message) with two
    deviations:

    * The message is **captured at pickup**: the moment the wire starts
      serializing, ``(arrival, destination, packet)`` is appended to the
      shard's outbox with ``arrival = now + wire``.  Since ``wire >=
      lookahead`` by construction, every message emitted inside a
      window starting at ``T`` arrives at ``>= T + lookahead`` -- the
      invariant the conservative window protocol rests on.
    * No remote credit is reserved; the receiving shard's injector
      performs the ``reserve``/``deliver`` pair on arrival, preserving
      in-shard flow control while decoupling the shards.
    """

    def __init__(
        self,
        sim: "Simulator",
        costs: "CostModel",
        dest_shard: int,
        dest_cluster: int,
        dest_port: int,
        outbox: list,
        name: str = "blink",
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.dest_shard = dest_shard
        self.dest_cluster = dest_cluster
        self.dest_port = dest_port
        self.outbox = outbox
        self.name = name
        self._requests: Store = Store(sim)
        self.metrics = sim.vstat.registry(name)
        self._m_messages = self.metrics.counter("link.messages_carried")
        self._m_bytes = self.metrics.counter("link.bytes_carried")
        self._m_busy = self.metrics.counter("link.busy_us")
        self._m_queue = self.metrics.gauge("link.queue_depth")
        sim.process(self._pump())

    @property
    def messages_carried(self) -> int:
        return int(self._m_messages.value)

    @property
    def bytes_carried(self) -> int:
        return int(self._m_bytes.value)

    @property
    def busy_time(self) -> float:
        return self._m_busy.value

    @property
    def queue_length(self) -> int:
        return len(self._requests)

    def send(self, packet: Packet) -> Event:
        """Queue ``packet``; fires once it is on the (remote-bound) wire."""
        done = Event(self.sim)
        self._requests.try_put((packet, done))
        return done

    def _pump(self):
        sim = self.sim
        wire_time = self.costs.hpc_wire_time
        hop_latency = self.costs.hpc_hop_latency
        outbox = self.outbox
        dest = (self.dest_shard, self.dest_cluster, self.dest_port)
        while True:
            packet, done = yield self._requests.get()
            self._m_queue.set(len(self._requests))
            size = packet.size
            wire = wire_time(size) + hop_latency
            # Capture at pickup, not after the wire: the arrival stamp
            # must stay >= (window start + lookahead) even for messages
            # still "in flight" when the window closes.
            outbox.append(
                (sim.now + wire,) + dest
                + (encode_packet(packet, packet.hops + 1),)
            )
            yield sim.timeout(wire)
            self._m_busy.value += wire
            self._m_messages.value += 1.0
            self._m_bytes.value += size
            done.succeed()


# ---------------------------------------------------------------------------
# Shard-local fabric slice
# ---------------------------------------------------------------------------
class ShardFabric(Fabric):
    """The shard-local slice of a partitioned fabric.

    ``clusters`` keeps the full fabric's indexing with ``None`` for
    remote clusters; only local clusters, endpoints, and links are
    built.  Routing tables cover *every* fabric address (computed over
    the full cluster graph), so a local cluster forwards traffic for a
    remote destination toward the correct boundary port.
    """

    def __init__(
        self,
        sim: "Simulator",
        costs: "CostModel",
        spec: TopologySpec,
        partition: FabricPartition,
        shard_id: int,
        outbox: list,
    ) -> None:
        super().__init__(sim, costs)
        if not 0 <= shard_id < partition.n_shards:
            raise ValueError(
                f"shard {shard_id} out of range 0..{partition.n_shards - 1}"
            )
        self.topology_name = spec.topology_name
        self.spec = spec
        self.partition = partition
        self.shard_id = shard_id
        self.outbox = outbox
        shard_of = partition.shard_of_cluster
        self.local_clusters = [
            cid for cid in range(spec.n_clusters) if shard_of[cid] == shard_id
        ]
        self.clusters = [None] * spec.n_clusters  # type: ignore[list-item]
        for cid in self.local_clusters:
            self.clusters[cid] = Cluster(
                sim, costs, cid, spec.cluster_ports[cid]
            )
        self.boundary_out: list[BoundaryLink] = []
        for a, a_port, b, b_port in spec.links:
            sa, sb = shard_of[a], shard_of[b]
            if sa == shard_id and sb == shard_id:
                self.connect_clusters(
                    self.clusters[a], a_port, self.clusters[b], b_port
                )
            elif sa == shard_id:
                self._wire_boundary(a, a_port, b, b_port, sb)
            elif sb == shard_id:
                self._wire_boundary(b, b_port, a, a_port, sa)
        for address, cid, port, name in spec.attachments:
            if shard_of[cid] != shard_id:
                continue
            iface = HPCInterface(sim, costs, address, name)
            self.interfaces[address] = iface
            self.attach(self.clusters[cid], port, iface)
        self._next_address = 1 + max(
            (entry[0] for entry in spec.attachments), default=-1
        )
        self._build_global_routes()

    def _wire_boundary(
        self, cid: int, port: int, peer: int, peer_port: int, peer_shard: int
    ) -> None:
        link = BoundaryLink(
            self.sim, self.costs, peer_shard, peer, peer_port, self.outbox,
            name=f"c{cid}.p{port}->c{peer}@s{peer_shard}",
        )
        cluster = self.clusters[cid]
        self._check_port_free(cluster, port)
        cluster.out_links[port] = link  # type: ignore[assignment]
        self._cluster_edges[(cid, port)] = peer
        self.boundary_out.append(link)

    def _build_global_routes(self) -> None:
        adjacency = self.spec.adjacency()
        for cid in self.local_clusters:
            first_port = first_hop_ports(adjacency, cid)
            routing = self.clusters[cid].routing
            for address, home, attach_port, _name in self.spec.attachments:
                if home == cid:
                    routing[address] = attach_port
                elif home in first_port:
                    routing[address] = first_port[home]

    # -- cross-shard arrivals ------------------------------------------------
    def inject(
        self, arrival: float, cid: int, port: int, packet: Packet
    ) -> None:
        """Deliver a boundary message into a local cluster input.

        Spawned per message in batch order; the injector honours the
        port's buffer credits (FIFO), so in-shard flow control survives
        the shard boundary.
        """
        self.sim.process(self._inject(arrival, cid, port, packet))

    def _inject(self, arrival: float, cid: int, port: int, packet: Packet):
        sim = self.sim
        delay = arrival - sim.now
        if delay > 0:
            yield sim.timeout(delay)
        binput = self.clusters[cid].inputs[port]
        yield binput.reserve()
        binput.deliver(packet)

    # -- overrides for the sparse cluster list -------------------------------
    def _local(self):
        for cid in self.local_clusters:
            yield self.clusters[cid]

    def _links(self):
        for cluster in self._local():
            for link in cluster.out_links:
                if link is not None:
                    yield link
        for address in self.attachments:
            link = self.interfaces[address].link
            if link is not None:
                yield link

    def stats(self) -> dict:
        return {
            "topology": self.topology_name,
            "shard": self.shard_id,
            "shards": self.partition.n_shards,
            "clusters": len(self.local_clusters),
            "endpoints": len(self.attachments),
            "boundary_links": len(self.boundary_out),
            "messages_forwarded": sum(
                c.messages_forwarded for c in self._local()
            ),
            "port_utilisation": {
                c.cluster_id: len(c.wired_ports()) for c in self._local()
            },
        }

    def route_hops(self, src: int, dst: int) -> int:
        raise NotImplementedError(
            "route_hops needs the full fabric; shard slices only carry "
            "local clusters (use the parent fabric or packet.hops)"
        )


def build_shard_fabric(
    sim: "Simulator",
    costs: "CostModel",
    spec: TopologySpec,
    partition: FabricPartition,
    shard_id: int,
    outbox: Optional[list] = None,
) -> ShardFabric:
    """Build one shard's fabric slice (outbox defaults to a fresh list)."""
    return ShardFabric(
        sim, costs, spec, partition, shard_id,
        outbox if outbox is not None else [],
    )
