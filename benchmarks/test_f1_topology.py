"""F1: Figure 1's typical local area multicomputer, plus the Section 1
scaling arithmetic: a 1024-node system from 256 twelve-port clusters,
8 ports to hypercube neighbours and 4 to processing nodes.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_topology


def test_topology_accounting(benchmark):
    result = run_experiment(benchmark, experiment_topology)
    lam = result.data["lam"]
    flagship = result.data["flagship"]
    # The operational system: 70 nodes + 10 workstations.
    assert lam["endpoints"] == 80
    # The flagship: 1024 nodes on 256 clusters, every port used.
    assert flagship["endpoints"] == 1024
    assert flagship["clusters"] == 256
    assert all(ports == 12 for ports in flagship["port_utilisation"].values())
    assert flagship["cluster_links"] == 256 * 8 // 2
