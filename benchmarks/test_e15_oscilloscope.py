"""E15: the software oscilloscope on an imbalanced application
(Section 6.2) -- the display shows exactly the load-balance problem the
tool was built to expose.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_oscilloscope


def test_oscilloscope_output(benchmark):
    result = run_experiment(benchmark, experiment_oscilloscope)
    view = result.data["view"]
    # The imbalance is visible: max/mean user time well above 1.
    assert result.data["imbalance"] > 1.4
    # The report contains per-processor strips and the category table.
    assert "%USER" in result.report
    assert "|" in result.report
