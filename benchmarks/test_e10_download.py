"""E10: program download and start-up (Section 3.3).

Paper anchors at 70 processes: 12 seconds with one stub + one download
per process, 2 seconds with the fan-out tree.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    PAPER_DOWNLOAD_PER_PROCESS_S,
    PAPER_DOWNLOAD_TREE_S,
    experiment_download,
)
from repro.bench.harness import within


def test_download_schemes(benchmark):
    result = run_experiment(benchmark, experiment_download,
                            node_counts=(10, 30, 50, 70))
    data = result.data
    assert within(data[70]["per-process"].seconds,
                  PAPER_DOWNLOAD_PER_PROCESS_S, 0.10)
    assert within(data[70]["tree"].seconds, PAPER_DOWNLOAD_TREE_S, 0.15)
    # The tree advantage grows with the process count.
    speedups = [data[n]["per-process"].seconds / data[n]["tree"].seconds
                for n in (10, 30, 50, 70)]
    assert speedups == sorted(speedups)
    # Per-process cost is linear in N (host-centralized work).
    assert data[70]["per-process"].seconds > 6 * data[10]["per-process"].seconds
