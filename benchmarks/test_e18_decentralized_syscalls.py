"""E18 (extension): decentralized system calls (Section 3.3 future work).

The paper's planned fix for the single-host syscall bottleneck: direct
system calls to any of the host workstations.  Aggregate throughput
should scale with the host count.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_decentralized_syscalls


def test_syscall_throughput_scales_with_hosts(benchmark):
    result = run_experiment(benchmark, experiment_decentralized_syscalls,
                            n_nodes=6, calls_per_node=10,
                            host_counts=(1, 2, 4))
    data = result.data
    # More hosts -> materially higher aggregate throughput.
    assert data[2]["calls_per_sec"] > 1.5 * data[1]["calls_per_sec"]
    assert data[4]["calls_per_sec"] > 2.2 * data[1]["calls_per_sec"]
