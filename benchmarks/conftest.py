"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper on the
simulator.  Simulations are deterministic, so every experiment runs once
(``rounds=1``); pytest-benchmark records the wall time of regenerating
the experiment and ``extra_info`` carries the paper-comparison report.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_experiment(benchmark, runner, **kwargs):
    """Run one experiment under pytest-benchmark and attach its report."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1,
                                iterations=1)
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["title"] = result.title
    if result.comparison is not None:
        benchmark.extra_info["worst_deviation"] = (
            f"{100 * result.comparison.worst_deviation():.1f}%"
        )
    print(f"\n{result.report}")
    if result.comparison is not None:
        print(result.comparison.format())
    return result
