"""E7+E8+E13: hardware versus software flow control (Section 2).

Many-to-one long messages on the S/NET: busy retransmission livelocks
(the receiver reads and discards partial messages forever); random
backoff recovers but runs at the timeout rate; the reservation protocol
eliminates overflow; the HPC's in-hardware flow control handles the same
workload without any recovery machinery.  Plus the fifo sizing rule:
twelve 150-byte messages fit in the 2048-byte fifo, a thirteenth does
not.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    experiment_fifo_sizing,
    experiment_flow_control,
)


def test_flow_control_schemes(benchmark):
    result = run_experiment(benchmark, experiment_flow_control,
                            n_senders=6, message_bytes=1000)
    data = result.data
    # The original Meglos scheme locks out under this workload.
    assert not data["snet busy-retransmit"]["finished"]
    assert data["snet busy-retransmit"]["partials_discarded"] > 100
    # Every alternative completes.
    for scheme in ("snet random-backoff", "snet reservation",
                   "hpc hardware"):
        assert data[scheme]["finished"], scheme
    # Hardware flow control needs no partial-message discards at all.
    assert data["hpc hardware"]["partials_discarded"] == 0
    assert data["snet reservation"]["partials_discarded"] == 0


def test_fifo_sizing_rule(benchmark):
    result = run_experiment(benchmark, experiment_fifo_sizing)
    assert result.data[12] == 0  # 12 x 150B fit
    assert result.data[13] >= 1  # the 13th overflows
