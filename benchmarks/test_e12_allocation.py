"""E12: processor allocation policies (Section 3.1).

Monte-Carlo developer workload: under Meglos's allocate-on-run policy,
recompiling developers return to "processors not available"; under
VORX's reserve-for-session policy runs never fail, but forgotten frees
leave processors held idle.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_allocation


def test_allocation_policies(benchmark):
    result = run_experiment(benchmark, experiment_allocation)
    meglos = result.data["meglos"]
    vorx = result.data["vorx"]
    # Meglos: the paper's failure mode occurs...
    assert meglos.total_failures > 0
    # ...but VORX's reservations eliminate it completely.
    assert vorx.total_failures == 0
    # The VORX cost: processors held but idle (reserved across edits,
    # plus the occasional forgotten free).
    assert vorx.held_idle_fraction > meglos.held_idle_fraction
