"""E4: user-defined communications objects with no protocol (Section 4.1).

The parallel-SPICE measurement: 64-byte messages, direct register access,
interrupts disabled, polling -- ~60 us one-way software latency.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    PAPER_UD_LATENCY_US,
    experiment_userdefined_latency,
)
from repro.bench.harness import within


def test_userdefined_latency(benchmark):
    result = run_experiment(benchmark, experiment_userdefined_latency,
                            rounds=300)
    assert within(result.data.one_way_us, PAPER_UD_LATENCY_US, 0.2)
    # Far below the channel protocol's 341 us for the same size: the
    # whole point of user-defined objects.
    assert result.data.one_way_us < 341 / 3
