"""E5: real-time bitmap streaming (Section 4.1).

Target shape: ~3.2 Mbyte/s with hardware-only flow control -- enough to
refresh a 900x900 bi-level display patch at 30 Hz from a remote node.
"""

from conftest import run_experiment

from repro.bench.experiments import PAPER_BITMAP_MBPS, experiment_bitmap
from repro.bench.harness import within


def test_bitmap_streaming(benchmark):
    result = run_experiment(benchmark, experiment_bitmap, frames=3)
    assert within(result.data.mbytes_per_sec, PAPER_BITMAP_MBPS, 0.15)
    assert result.data.refreshes_900x900_at_30hz
