"""E11: subprocesses, context switches, and the alternatives (Section 5).

Anchors: the 80 us context switch; subprocess structuring is the most
expensive, coroutines cheaper (switches only at well-defined points),
single-subprocess polling and interrupt-level programming cheapest.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    PAPER_CONTEXT_SWITCH_US,
    experiment_structuring,
)
from repro.bench.harness import within


def test_structuring_costs(benchmark):
    result = run_experiment(benchmark, experiment_structuring,
                            n_messages=150)
    data = result.data
    assert within(data["context_switch_us"], PAPER_CONTEXT_SWITCH_US, 0.05)
    sub = data["subprocesses"].us_per_message
    cor = data["coroutines"].us_per_message
    pol = data["polling"].us_per_message
    isr = data["interrupt-level"].us_per_message
    # Paper's ordering claims:
    assert sub > cor  # coroutines have less overhead than subprocesses
    assert cor > pol  # a never-switching subprocess is cheaper still
    assert cor > isr  # interrupt-level avoids save/restore entirely
    # Context-switch counts explain the ordering.
    assert data["subprocesses"].context_switches > \
        data["coroutines"].context_switches > \
        data["polling"].context_switches
