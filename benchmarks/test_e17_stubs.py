"""E17: stub organisation pathologies (Section 3.3).

With a shared stub, one process's blocking keyboard read stalls every
sibling's system calls for its full duration; with per-process stubs the
siblings are unaffected.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_stubs


def test_stub_blocking_serialisation(benchmark):
    result = run_experiment(benchmark, experiment_stubs)
    per_process = result.data["stub per process"]
    shared = result.data["shared stub"]
    # Shared stub: the worker waits out the sibling's 0.5 s block.
    assert shared > 400_000.0
    # Per-process stubs: milliseconds.
    assert per_process < 20_000.0
    assert shared > 20 * per_process
