"""E16: cdb examining a deadlocked application (Section 6.1).

Three processes in a read-before-write cycle; cdb dumps the channel
states ("blocked waiting for input") and isolates the wait cycle.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_cdb


def test_cdb_on_deadlock(benchmark):
    result = run_experiment(benchmark, experiment_cdb)
    cycles = result.data["cycles"]
    assert len(cycles) == 1
    assert len(cycles[0]) == 3
    assert "blocked-reading" in result.report
    assert "deadlock cycle" in result.report
