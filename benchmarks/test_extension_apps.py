"""Benchmarks for the extension applications (the paper's tenants).

Not paper tables -- these regenerate the *capabilities* the paper's
introduction claims for the platform: real-time conferencing across
workstations (Rapport), parallel circuit simulation (CEMU), and
real-time device control (the robotics work on S/NET-Meglos that
motivated subprocess priorities).
"""

from repro.apps.cemu import Circuit, run_cemu
from repro.apps.rapport import AUDIO_PERIOD_US, run_rapport
from repro.apps.robot import run_robot_control


def test_rapport_conference_realtime(benchmark):
    result = benchmark.pedantic(
        lambda: run_rapport(n_conferees=4, n_rounds=25),
        rounds=1, iterations=1,
    )
    print(f"\n{result.n_conferees} conferees: mean mixed-audio latency "
          f"{result.mean_audio_latency_us / 1000:.2f} ms, delivery "
          f"{100 * result.delivery_ratio:.0f}%, video tiles "
          f"{result.video_tiles_delivered}")
    assert result.realtime_ok
    assert result.mean_audio_latency_us < 2 * AUDIO_PERIOD_US


def test_cemu_parallel_simulation(benchmark):
    circuit = Circuit.random(n_inputs=8, n_gates=64)

    def run():
        return {p: run_cemu(circuit=circuit, p=p, timesteps=10)
                for p in (1, 2, 4)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nCEMU gate-evals/s by node count:",
          {p: f"{r.gates_per_second:,.0f}" for p, r in results.items()})
    assert all(r.correct for r in results.values())
    # Change-event traffic only: far fewer events than gate evaluations.
    total_evals = 64 * 10
    assert results[4].events_sent < total_evals


def test_robot_realtime_control(benchmark):
    def run():
        return (run_robot_control(control_priority=0,
                                  background_priority=10),
                run_robot_control(control_priority=5,
                                  background_priority=5))

    prioritised, equal = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nprioritised: {prioritised.deadline_misses} misses, "
          f"final angle {prioritised.final_angle:.3f}; equal-priority: "
          f"{equal.deadline_misses} misses, final {equal.final_angle:.3f}")
    assert prioritised.deadline_misses == 0
    assert abs(prioritised.final_angle - 1.0) < 0.1
    assert equal.deadline_misses > 100
    assert abs(equal.final_angle - 1.0) > 0.5
