"""E9: the channel-open bottleneck (Section 3.2).

Meglos centralized all resource management on a single host -- "a
serious performance bottleneck for systems with over ten processors".
VORX replicates the object manager onto every node with distributed
hashing.  Application start-up (every node opening its channels) should
scale flat under the distributed manager and degrade linearly under the
centralized one.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_object_manager


def test_object_manager_scaling(benchmark):
    result = run_experiment(benchmark, experiment_object_manager,
                            node_counts=(2, 4, 8, 16))
    data = result.data
    speedup = {
        p: data[p]["centralized"] / data[p]["distributed"]
        for p in data
    }
    # At two nodes the organisations are comparable...
    assert speedup[2] < 1.5
    # ...and the centralized manager degrades as nodes are added.
    assert speedup[16] > 2.5
    assert speedup[16] > speedup[4] > speedup[2]
    # Distributed setup time stays nearly flat (sub-linear growth).
    assert data[16]["distributed"] < 4 * data[2]["distributed"]
    # Centralized grows roughly linearly with node count.
    assert data[16]["centralized"] > 4 * data[2]["centralized"]
