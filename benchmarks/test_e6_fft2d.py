"""E6: the 2DFFT result-distribution comparison (Section 4.2).

Multicast makes every receiver read everything; point-to-point sends
each processor only what it needs.  The waste ratio equals the processor
count, and in the byte-dominated regime point-to-point wins outright.
"""

from conftest import run_experiment

from repro.bench.experiments import experiment_fft2d


def test_fft2d_distribution(benchmark):
    result = run_experiment(benchmark, experiment_fft2d, n=32, ps=(2, 4, 8))
    data = result.data
    for p in (2, 4, 8):
        mc, pp = data[p]["multicast"], data[p]["point-to-point"]
        assert mc.correct and pp.correct
        # Waste ratio == p (each receiver needs 1/p of what it reads).
        assert abs(mc.bytes_read_per_node / pp.bytes_read_per_node - p) < 0.1
        # Point-to-point is faster once bytes dominate.
        assert pp.elapsed_us < mc.elapsed_us
    # The advantage grows with the processor count.
    gain = {p: data[p]["multicast"].elapsed_us
            - data[p]["point-to-point"].elapsed_us for p in (2, 8)}
    assert data[8]["multicast"].bytes_read_per_node > \
        data[2]["multicast"].bytes_read_per_node
