"""E2+E3 / Table 2: channel (stop-and-wait) latency and bandwidth.

Regenerates Table 2 and the Section 4 in-text numbers: 303 us end-to-end
for 4-byte messages and ~1027 kbyte/s for 1024-byte messages.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    PAPER_CHANNEL_KBPS,
    PAPER_TABLE2,
    experiment_table2,
)
from repro.bench.harness import within


def test_table2_channel_latency(benchmark):
    result = run_experiment(benchmark, experiment_table2, n_messages=500)
    measured = result.data
    for size, paper in PAPER_TABLE2.items():
        assert within(measured[size], paper, 0.05), (size, measured[size])
    # Latency grows linearly in message size at ~0.68 us/byte.
    slope = (measured[1024] - measured[4]) / 1020.0
    assert 0.6 < slope < 0.75
    # Bandwidth at 1024 bytes approaches the paper's 1027 kbyte/s.
    kbps = 1024 / (measured[1024] / 1e6) / 1024
    assert within(kbps, PAPER_CHANNEL_KBPS, 0.08)
