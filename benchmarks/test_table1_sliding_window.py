"""E1 / Table 1: reader-active sliding-window protocol latency.

Regenerates every cell of Table 1 (buffers 1..64 x message sizes
4..1024 bytes) and checks the paper's qualitative findings:

* latency falls monotonically with more buffers, with diminishing
  returns (the ~1/k shape);
* even with only two buffers the sliding-window protocol beats the
  highly optimised channel protocol (Table 2);
* with a single buffer it is *worse* than channels.
"""

from conftest import run_experiment

from repro.bench.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    experiment_table1,
)


def test_table1_sliding_window(benchmark):
    result = run_experiment(benchmark, experiment_table1, n_messages=400)
    measured = result.data
    sizes = (4, 64, 256, 1024)
    buffers = (1, 2, 4, 8, 16, 32, 64)

    for size in sizes:
        # Monotone decreasing in the buffer count (a couple of us of
        # batching-dynamics wobble is tolerated near the asymptote).
        series = [measured[(k, size)] for k in buffers]
        assert all(a >= b - 3.0 for a, b in zip(series, series[1:])), series
        # One buffer is worse than the channel protocol; two are better.
        assert measured[(1, size)] > PAPER_TABLE2[size]
        assert measured[(2, size)] < PAPER_TABLE2[size]

    # Quantitative band: every cell within 25% of the paper's value
    # (most are much closer; see EXPERIMENTS.md).
    for key, paper in PAPER_TABLE1.items():
        deviation = abs(measured[key] - paper) / paper
        assert deviation < 0.25, (key, measured[key], paper)
