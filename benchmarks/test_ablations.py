"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper tables; they probe the *why* behind the paper's
design decisions on the same simulator:

* credit-update rate tuning for the sliding-window protocol (Section
  4.1: "the number of update messages should be kept small, but should
  be sent often enough to maintain concurrency" -- and "tuning the
  protocol ... must be done in an application-specific manner");
* the kernel's channel side buffers ("many side buffers", Section 4);
* CPU speed scaling -- demonstrating the claim that software, not the
  interconnect, dominates latency (Section 1);
* the HPC's whole-message port buffering depth (Section 2).
"""

import dataclasses

import pytest

from repro.model import DEFAULT_COSTS


# ------------------------------------------------------------------
# Ablation 1: sliding-window credit update rate
# ------------------------------------------------------------------
def test_credit_update_rate_tradeoff(benchmark):
    from repro.vorx.sliding_window import run_sliding_window

    def run():
        wide = {b: run_sliding_window(16, 256, n_messages=300,
                                      credit_batch=b).us_per_message
                for b in (1, 2, 4, 8, 16)}
        narrow = {b: run_sliding_window(2, 256, n_messages=300,
                                        credit_batch=b).us_per_message
                  for b in (1, 2)}
        return wide, narrow

    wide, narrow = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncredit batching at k=16 (us/msg):", {
        b: round(v, 1) for b, v in wide.items()})
    print("credit batching at k=2  (us/msg):", {
        b: round(v, 1) for b, v in narrow.items()})
    # With a wide window, fewer update messages help monotonically...
    assert wide[16] < wide[4] < wide[1]
    # ...but with a narrow window, batching all credits serializes the
    # sender (loses concurrency): the tuning is window/application
    # specific, exactly as the paper says.
    loss_narrow = narrow[2] / narrow[1]
    gain_wide = wide[1] / wide[16]
    assert gain_wide > 1.1
    assert loss_narrow > 0.95  # batching does NOT help much at k=2


# ------------------------------------------------------------------
# Ablation 2: channel side buffers
# ------------------------------------------------------------------
def test_side_buffer_depth(benchmark):
    from repro import VorxSystem

    def run_with(buffers):
        costs = dataclasses.replace(DEFAULT_COSTS, chan_side_buffers=buffers)
        system = VorxSystem(n_nodes=2, costs=costs)
        state = {}

        def writer(env):
            ch = yield from env.open("abl")
            t0 = env.now
            for _ in range(10):
                yield from env.write(ch, 256)
            state["write_time"] = env.now - t0

        def reader(env):
            ch = yield from env.open("abl")
            yield from env.sleep(5_000.0)  # let messages pile up
            for _ in range(10):
                yield from env.read(ch)

        system.spawn(0, writer)
        system.spawn(1, reader)
        system.run()
        return state["write_time"]

    results = benchmark.pedantic(
        lambda: {b: run_with(b) for b in (1, 4, 16)}, rounds=1, iterations=1
    )
    print("\nside-buffer ablation (total write time, us):",
          {b: round(v) for b, v in results.items()})
    # With one side buffer, every message past the first waits for the
    # reader's RETRY -- the writer is throttled to the reader's pace.
    assert results[1] > 1.8 * results[16]
    # "Many side buffers" decouple the writer fully for this burst.
    assert results[4] <= results[1]


# ------------------------------------------------------------------
# Ablation 3: CPU speed scaling (software dominates latency)
# ------------------------------------------------------------------
def test_software_dominates_latency(benchmark):
    from repro.vorx.sliding_window import run_channel_stream

    def run():
        return {
            factor: run_channel_stream(
                4, n_messages=150, costs=DEFAULT_COSTS.scaled(factor)
            ).us_per_message
            for factor in (1.0, 0.5, 0.25)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nCPU-speed ablation (4B channel latency, us):",
          {f: round(v, 1) for f, v in results.items()})
    # Halving every software cost nearly halves the end-to-end latency:
    # the interconnect contributes almost nothing (Section 1's claim
    # that hardware latency is much smaller than software latency).
    assert results[0.5] < 0.58 * results[1.0]
    assert results[0.25] < 0.35 * results[1.0]


# ------------------------------------------------------------------
# Ablation 4: HPC port buffering depth
# ------------------------------------------------------------------
def test_port_buffer_depth(benchmark):
    from repro import VorxSystem

    def run_with(port_buffers):
        costs = dataclasses.replace(DEFAULT_COSTS,
                                    hpc_port_buffers=port_buffers)
        system = VorxSystem(n_nodes=7, costs=costs)
        n_senders = 6

        def sender(env, who):
            ch = yield from env.open(f"pb-{who}")
            for _ in range(5):
                yield from env.write(ch, 1000)

        def receiver(env):
            channels = []
            for who in range(n_senders):
                ch = yield from env.open(f"pb-{who}")
                channels.append(ch)
            for _ in range(5 * n_senders):
                yield from env.read_any(channels)
            return env.now

        for i in range(n_senders):
            system.spawn(i, lambda env, i=i: sender(env, i))
        rx = system.spawn(n_senders, receiver)
        system.run_until_complete([rx])
        return rx.result

    results = benchmark.pedantic(
        lambda: {b: run_with(b) for b in (1, 2, 4)}, rounds=1, iterations=1
    )
    print("\nport-buffer ablation (many-to-one completion, us):",
          {b: round(v) for b, v in results.items()})
    # Deeper hardware buffering never hurts and the system is correct at
    # every depth (lossless by construction); with the receiving CPU as
    # the bottleneck the effect is modest.
    assert results[4] <= results[1] * 1.05
