"""Compatibility shim for environments without PEP-517 wheel support.

Modern installs use pyproject.toml; this lets ``python setup.py develop``
(or legacy ``pip install -e .``) work on older toolchains.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
)
