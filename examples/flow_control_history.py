"""The Section 2 flow-control story, replayed.

Many processors send a long message to one processor at nearly the same
time.  On the S/NET (no hardware flow control) the original
busy-retransmission scheme livelocks: the receiver drains partially
retained messages forever while the spinning senders instantly refill
the freed space.  Random backoff and a reservation protocol both recover
-- at a price -- and the HPC's in-hardware flow control makes the whole
problem disappear.

Run:  python examples/flow_control_history.py
"""

from repro.bench.experiments import experiment_flow_control


def main() -> None:
    result = experiment_flow_control(n_senders=6, message_bytes=1000)
    print(result.report)
    busy = result.data["snet busy-retransmit"]
    print(
        f"\nbusy retransmission: only {busy['senders_done']}/6 senders ever "
        f"completed; the receiver read and discarded "
        f"{busy['partials_discarded']:,} partial messages before we gave up."
    )
    print(
        "\nThis is why Meglos never implemented reliable overflow recovery\n"
        "(applications simply had to bound many-to-one message sizes), and\n"
        "why the HPC implements flow control entirely in hardware."
    )


if __name__ == "__main__":
    main()
