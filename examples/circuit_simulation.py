"""CEMU-style parallel circuit simulation (paper refs [15], Sections 4.1/5).

MOS timing simulation was one of HPC/VORX's demanding tenants -- it is
why user-defined communications objects exist.  This example simulates a
real gate-level netlist (an 8-bit ripple-carry adder, then a random
circuit) in parallel across the node pool, exchanging only *changed*
signals in batched messages each lock-step, and verifies the result
against the single-node reference simulation.

Run:  python examples/circuit_simulation.py
"""

from repro.apps.cemu import Circuit, run_cemu, simulate_serial
from repro.bench import format_table


def main() -> None:
    # A real computation: add two numbers with simulated logic gates.
    bits = 8
    a, b = 173, 89
    adder = Circuit.ripple_adder(bits=bits)
    inputs = (
        [(a >> i) & 1 for i in range(bits)]
        + [(b >> i) & 1 for i in range(bits)]
        + [0]
    )
    result = run_cemu(circuit=adder, inputs=inputs, p=4, timesteps=6 * bits)
    values = simulate_serial(adder, inputs, timesteps=6 * bits)
    total = sum(values[adder.sum_gate(i)] << i for i in range(bits))
    total += values[adder.carry_gate(bits - 1)] << bits
    print(f"ripple-carry adder on 4 nodes: {a} + {b} = {total} "
          f"(parallel == serial: {result.correct})\n")

    # Scaling on a larger random netlist.
    circuit = Circuit.random(n_inputs=8, n_gates=64)
    rows = []
    for p in (1, 2, 4, 8):
        r = run_cemu(circuit=circuit, p=p, timesteps=10)
        rows.append([p, f"{r.elapsed_us / 1000:.1f}",
                     f"{r.gates_per_second:,.0f}", r.events_sent,
                     r.messages_sent, "yes" if r.correct else "NO"])
    print(format_table(
        ["nodes", "elapsed ms", "gate-evals/s", "change events",
         "messages", "correct"],
        rows,
    ))
    print(
        "\nOnly *changed* signals cross partitions (change-event traffic,\n"
        "the message pattern timing simulators generate); at this tiny\n"
        "netlist size communication dominates beyond a few nodes --\n"
        "which is exactly why CEMU cared so much about protocol overhead."
    )


if __name__ == "__main__":
    main()
