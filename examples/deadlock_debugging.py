"""Debugging a deadlocked application with cdb and vdb (Section 6).

Three processes pass tokens around a ring, but every one of them reads
before writing -- the classic communications deadlock.  cdb dumps the
channel states and isolates the wait cycle; vdb attaches to a stuck
process and recovers its backtrace.

Run:  python examples/deadlock_debugging.py
"""

from repro import VorxSystem
from repro.tools import Cdb, Vdb


def main() -> None:
    system = VorxSystem(n_nodes=3)

    def stage(env, first, second, rx_name):
        a = yield from env.open(first)
        b = yield from env.open(second)
        rx = a if first == rx_name else b
        tx = b if first == rx_name else a
        # BUG: every stage waits for its predecessor before sending.
        yield from env.read(rx)
        yield from env.write(tx, 64)

    system.spawn(0, lambda env: stage(env, "a-b", "c-a", "c-a"), name="procA")
    system.spawn(1, lambda env: stage(env, "a-b", "b-c", "a-b"), name="procB")
    system.spawn(2, lambda env: stage(env, "b-c", "c-a", "b-c"), name="procC")
    system.run()  # quiesces with everyone blocked

    print("the application has stopped; running cdb...\n")
    cdb = Cdb(system)
    print(cdb.format(cdb.channels()))
    print()
    print(cdb.report_deadlocks())

    print("\nattaching vdb to the first stuck process...\n")
    vdb = Vdb(system)
    stuck = cdb.find_deadlocks()[0][0]
    print(vdb.attach(stuck).format())


if __name__ == "__main__":
    main()
