"""A Rapport-style multimedia conference spanning hosts and nodes.

The paper's flagship application class (Section 1): real-time audio and
video between workstation conferees, with a processing-pool node doing
the audio mixing -- one application spanning many workstations and many
nodes, which is exactly what a local area multicomputer is for.

Run:  python examples/conference.py
"""

from repro.apps.rapport import AUDIO_PERIOD_US, run_rapport
from repro.bench import format_table


def main() -> None:
    rows = []
    for n in (2, 4, 6):
        result = run_rapport(n_conferees=n, n_rounds=25)
        rows.append([
            n,
            f"{result.mean_audio_latency_us / 1000:.2f}",
            f"{result.max_audio_latency_us / 1000:.2f}",
            f"{100 * result.delivery_ratio:.0f}%",
            result.video_tiles_delivered,
            "yes" if result.realtime_ok else "NO",
        ])
    print("Rapport-style conference: 64-byte audio frames every 8 ms,\n"
          "mixed on a pool node; video tiles stream between conferees.\n")
    print(format_table(
        ["conferees", "mean mix latency ms", "max ms", "delivered",
         "video tiles", "realtime"],
        rows,
    ))
    print(f"\n(real-time budget: a few {AUDIO_PERIOD_US / 1000:.0f} ms "
          f"frame periods end-to-end)")


if __name__ == "__main__":
    main()
