"""The Section 4.2 story: why multicast is inappropriate for the 2DFFT.

Computes a real two-dimensional FFT (verified against numpy.fft.fft2)
over a pool of simulated processors, distributing the intermediate
results two ways: multicast-everything versus per-receiver
point-to-point messages.

Run:  python examples/fft2d_demo.py
"""

from repro.apps import run_fft2d
from repro.bench import format_table


def main() -> None:
    n = 32
    rows = []
    for p in (2, 4, 8):
        multicast = run_fft2d(n=n, p=p, strategy="multicast")
        p2p = run_fft2d(n=n, p=p, strategy="point-to-point")
        assert multicast.correct and p2p.correct, "FFT mismatch!"
        rows.append([
            p,
            f"{multicast.elapsed_ms:.1f}",
            f"{p2p.elapsed_ms:.1f}",
            f"{multicast.bytes_read_per_node:.0f}",
            f"{p2p.bytes_read_per_node:.0f}",
            f"{multicast.bytes_read_per_node / p2p.bytes_read_per_node:.0f}x",
        ])
    print(f"2DFFT of a {n}x{n} image (results verified against numpy)\n")
    print(format_table(
        ["procs", "multicast ms", "p2p ms", "mc bytes/node",
         "p2p bytes/node", "wasted reading"],
        rows,
    ))
    print(
        "\nThe waste ratio equals the processor count: each multicast\n"
        "receiver reads every row but needs only its own columns.  At the\n"
        "paper's scale (256 processors) each node would read 65536 values\n"
        "to use 256 -- which is why VORX programmers send per-receiver\n"
        "messages instead (Section 4.2)."
    )


if __name__ == "__main__":
    main()
