"""Quickstart: build an HPC/VORX system and run a small application.

Two processing nodes rendezvous on a named channel, exchange messages
under the stop-and-wait protocol, and we inspect what happened with the
development tools.  Everything used here comes from the top-level
``repro`` facade.

Run:  python examples/quickstart.py
"""

from repro import Prof, SoftwareOscilloscope, VorxSystem, summarize


def main() -> None:
    # A two-node machine on a single twelve-port HPC cluster.
    system = VorxSystem(n_nodes=2)

    def producer(env):
        # Channels are named; two opens of the same name rendezvous
        # through the distributed object manager.  The with-block closes
        # the channel (and notifies the peer) on scope exit.
        with (yield from env.channel("results")) as channel:
            for item in range(5):
                # Simulate 2 ms of computation, then ship 1 KB of results.
                yield from env.compute(2_000.0, label="produce")
                yield from env.write(channel, 1024, payload=f"item-{item}")

    def consumer(env):
        received = []
        with (yield from env.channel("results")) as channel:
            for _ in range(5):
                size, payload = yield from env.read(channel)
                yield from env.compute(500.0, label="consume")
                received.append(payload)
        return received

    system.spawn(0, producer, name="producer")
    consumer_sp = system.spawn(1, consumer, name="consumer")
    system.run()

    print("consumer received:", consumer_sp.result)
    print(f"\nsimulated time: {system.sim.now / 1000:.2f} ms")

    print("\n--- software oscilloscope (Section 6.2) ---")
    scope = SoftwareOscilloscope.for_system(system)
    print(scope.render(bins=40))

    print("\n--- prof (Section 6.2) ---")
    print(Prof(system.nodes).format())

    print("\n--- vstat metrics ---")
    print(summarize(system))


if __name__ == "__main__":
    main()
