"""Streaming real-time bitmaps to a workstation display (Section 4.1).

A processing node pushes full display frames to a workstation with *no*
software flow control -- the HPC hardware's whole-message buffering
paces the sender -- and the workstation copies arrivals straight into
its frame buffer.  The paper measured 3.2 Mbyte/s: enough to refresh a
900x900 bi-level patch at 30 Hz.

Run:  python examples/bitmap_wall.py
"""

from repro.apps import run_bitmap_stream
from repro.apps.bitmap import FRAME_BYTES


def main() -> None:
    result = run_bitmap_stream(frames=5)
    print(f"streamed {result.frames} frames of {result.frame_bytes:,} bytes "
          f"({result.chunks_received} hardware messages)")
    print(f"sustained rate: {result.mbytes_per_sec:.2f} Mbyte/s "
          f"(paper: 3.2 Mbyte/s)")
    print(f"refresh rate:   {result.frames_per_sec:.1f} frames/s "
          f"(paper target: 30 Hz for a 900x900 bi-level patch "
          f"[{FRAME_BYTES:,} bytes])")
    verdict = "met" if result.refreshes_900x900_at_30hz else "missed"
    print(f"30 Hz target:   {verdict}")


if __name__ == "__main__":
    main()
