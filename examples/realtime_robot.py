"""Real-time robot-arm control with prioritised subprocesses (Section 5).

The original reason VORX has subprocesses with distinct priorities and a
preemptive scheduler: device control.  A PD control loop drives a
simulated one-joint arm to its setpoint while a low-priority trajectory
planner churns in the background; rerunning with *equal* priorities
shows the failure mode the scheduler prevents.

Run:  python examples/realtime_robot.py
"""

from repro.apps.robot import CONTROL_PERIOD_US, run_robot_control
from repro.bench import format_table


def main() -> None:
    prioritised = run_robot_control(control_priority=0,
                                    background_priority=10)
    equal = run_robot_control(control_priority=5, background_priority=5)
    rows = []
    for label, r in (("control prio 0, planner 10", prioritised),
                     ("both priority 5", equal)):
        rows.append([
            label,
            f"{r.mean_latency_us:.0f}",
            f"{r.max_latency_us:.0f}",
            f"{r.deadline_misses}/{r.samples}",
            f"{r.final_angle:.3f}",
            f"{r.tracking_error:.3f}",
        ])
    print(f"PD control of a simulated arm; sensor period "
          f"{CONTROL_PERIOD_US / 1000:.1f} ms, setpoint 1.0 rad\n")
    print(format_table(
        ["scheduling", "mean latency us", "max us", "deadline misses",
         "final angle", "tracking error"],
        rows,
    ))
    print(
        "\nWith distinct priorities the preemptive scheduler lands every\n"
        "torque update inside its period and the arm settles on the\n"
        "setpoint; with equal priorities the control loop queues behind\n"
        "the planner's bursts and the arm never gets there (Section 5)."
    )


if __name__ == "__main__":
    main()
